"""Batch Monte-Carlo engine: equivalence with the scalar oracle.

Three families of checks:

* statistical -- seeded batch runs must match the scalar member-list
  simulator (and the closed forms both are validated against) within
  tolerance: per-state occupancy, absorption-class frequencies,
  expected times and first sojourns;
* exact -- the batch ``CompetingSeries`` must reproduce the scalar
  recording semantics bit for bit (event axis, shapes, bounds) and be
  deterministic under a fixed seed;
* variant -- every registered adversary x churn combination must run
  on the batch tier (skip sampling for i.i.d. kinds, lane-tiled
  schedules for sessions) and agree with both the policy chain's
  closed forms and the scalar oracle.
"""

import numpy as np
import pytest

from repro.core.cluster_model import ClusterModel
from repro.core.parameters import ModelParameters
from repro.core.policies import COUNT_POLICIES
from repro.core.statespace import State
from repro.core.variants import build_policy_chain
from repro.simulation.batch import (
    BatchClusterEngine,
    BatchCompetingClustersSimulation,
    TrajectorySummaryAccumulator,
    batch_monte_carlo_summary,
    run_batch_trajectories,
)
from repro.core.transitions import CODE_SAFE_MERGE
from repro.simulation.cluster_sim import (
    ClusterSimulator,
    SimulationBudgetError,
    monte_carlo_summary,
)
from repro.simulation.overlay_sim import CompetingClustersSimulation

ATTACK = ModelParameters(core_size=7, spare_max=7, k=1, mu=0.2, d=0.8)


def make_engine(params=ATTACK, seed=12345):
    return BatchClusterEngine(params, np.random.default_rng(seed))


class TestBatchEngine:
    def test_initial_indices_delta_is_deterministic(self):
        engine = make_engine()
        indices = engine.sample_initial_indices(50, "delta")
        assert len(set(indices.tolist())) == 1
        assert engine.is_transient(indices).all()
        assert not engine.is_polluted(indices).any()

    def test_initial_indices_beta_all_transient(self):
        engine = make_engine(ModelParameters(mu=0.3, d=0.5))
        indices = engine.sample_initial_indices(500, "beta")
        assert engine.is_transient(indices).all()
        assert len(set(indices.tolist())) > 1

    def test_unknown_initial_law_rejected(self):
        engine = make_engine()
        with pytest.raises(ValueError):
            engine.sample_initial_indices(5, "gamma")

    def test_explicit_state_initial(self):
        engine = make_engine()
        state = State(3, 2, 1)
        indices = engine.sample_initial_indices(4, state)
        assert (indices == engine.rows.index_of(state)).all()

    def test_step_stays_inside_model_space(self):
        engine = make_engine()
        indices = engine.sample_initial_indices(200, "beta")
        for _ in range(30):
            indices = engine.step(indices)
            assert (0 <= indices).all()
            assert (indices < engine.rows.n_states).all()

    def test_absorbing_states_self_loop(self):
        engine = make_engine()
        absorbed = np.flatnonzero(~engine.is_transient(
            np.arange(engine.rows.n_states)
        ))
        landed = engine.step(absorbed.astype(np.intp))
        assert (landed == absorbed).all()

    def test_occupancy_matches_transient_law(self):
        """Empirical per-state occupancy tracks the chain's exact law.

        After t lockstep transitions from delta, the batch population's
        distribution over transient states must match
        ``ClusterModel.transient_law`` -- this exercises the padded-row
        searchsorted sampling against the analytically correct law.
        """
        params = ATTACK
        model = ClusterModel(params)
        chain = model.chain
        engine = make_engine(params, seed=99)
        n = 40_000
        steps = 6
        indices = engine.sample_initial_indices(n, "delta")
        for _ in range(steps):
            indices = engine.step(indices)
        law = model.transient_law("delta", steps)
        counts = np.bincount(indices, minlength=engine.rows.n_states)
        n_transient = law.shape[0]
        empirical = counts[:n_transient] / n
        total_variation = 0.5 * np.abs(empirical - law).sum()
        # Mass absorbed so far must agree too.
        assert counts[:n_transient].sum() / n == pytest.approx(
            law.sum(), abs=0.02
        )
        assert total_variation < 0.02

    def test_absorbing_initial_yields_zero_step_trajectories(self):
        """Parity with the scalar oracle on a closed initial state."""
        engine = make_engine()
        result = run_batch_trajectories(engine, 10, initial=State(0, 0, 0))
        assert (result.steps == 0).all()
        assert (result.time_safe == 0).all()
        assert (result.time_polluted == 0).all()
        assert (result.absorbed_code == CODE_SAFE_MERGE).all()
        oracle = ClusterSimulator(ATTACK, np.random.default_rng(0)).run(
            initial=State(0, 0, 0)
        )
        assert oracle.steps == 0
        assert oracle.absorbed_in == "safe-merge"

    def test_budget_error_raised(self):
        params = ModelParameters(mu=0.0, d=0.0)
        engine = make_engine(params)
        with pytest.raises(SimulationBudgetError):
            run_batch_trajectories(engine, 50, max_steps=2)

    def test_runs_validated(self):
        with pytest.raises(ValueError):
            run_batch_trajectories(make_engine(), 0)


class TestBatchTrajectoryEquivalence:
    @pytest.fixture(scope="class")
    def batch_summary(self):
        rng = np.random.default_rng(20110627)
        return batch_monte_carlo_summary(ATTACK, rng, runs=20_000)

    @pytest.fixture(scope="class")
    def scalar_summary(self):
        rng = np.random.default_rng(20110627)
        return monte_carlo_summary(ATTACK, rng, runs=2_000)

    @pytest.fixture(scope="class")
    def analytic(self):
        return ClusterModel(ATTACK)

    def test_times_match_scalar_and_closed_form(
        self, batch_summary, scalar_summary, analytic
    ):
        fate = analytic.cluster_fate("delta")
        assert batch_summary.mean_time_safe == pytest.approx(
            fate.expected_time_safe, rel=0.03
        )
        assert batch_summary.mean_time_safe == pytest.approx(
            scalar_summary.mean_time_safe, rel=0.08
        )
        assert batch_summary.mean_time_polluted == pytest.approx(
            fate.expected_time_polluted, rel=0.15, abs=0.05
        )

    def test_absorption_frequencies_match(
        self, batch_summary, scalar_summary, analytic
    ):
        fate = analytic.cluster_fate("delta")
        assert batch_summary.p_safe_merge == pytest.approx(
            fate.p_safe_merge, abs=0.02
        )
        assert batch_summary.p_safe_split == pytest.approx(
            fate.p_safe_split, abs=0.02
        )
        assert batch_summary.p_polluted_merge == pytest.approx(
            fate.p_polluted_merge, abs=0.01
        )
        for attribute in ("p_safe_merge", "p_safe_split", "p_polluted_merge"):
            assert getattr(batch_summary, attribute) == pytest.approx(
                getattr(scalar_summary, attribute), abs=0.04
            )
        total = (
            batch_summary.p_safe_merge
            + batch_summary.p_safe_split
            + batch_summary.p_polluted_merge
        )
        assert total == pytest.approx(1.0, abs=1e-12)

    def test_first_sojourns_match_relations_7_8(self, batch_summary, analytic):
        profile = analytic.sojourn_profile("delta", depth=1)
        assert batch_summary.mean_first_safe_sojourn == pytest.approx(
            profile.safe_sojourns[0], rel=0.03
        )
        assert batch_summary.mean_first_polluted_sojourn == pytest.approx(
            profile.polluted_sojourns[0], rel=0.15, abs=0.05
        )

    def test_beta_initial_matches_closed_form(self):
        params = ModelParameters(core_size=7, spare_max=7, k=1, mu=0.2, d=0.5)
        rng = np.random.default_rng(7)
        summary = batch_monte_carlo_summary(
            params, rng, runs=20_000, initial="beta"
        )
        fate = ClusterModel(params).cluster_fate("beta")
        assert summary.mean_time_safe == pytest.approx(
            fate.expected_time_safe, rel=0.03
        )
        assert summary.p_polluted_merge == pytest.approx(
            fate.p_polluted_merge, abs=0.01
        )

    def test_deterministic_under_seed(self):
        first = batch_monte_carlo_summary(
            ATTACK, np.random.default_rng(42), runs=500
        )
        second = batch_monte_carlo_summary(
            ATTACK, np.random.default_rng(42), runs=500
        )
        assert first == second


class TestBatchCompetingSeries:
    def test_event_axis_exactly_matches_scalar(self):
        """Recording semantics are unchanged engine to engine."""
        for n_events, record_every in [(100, 30), (100, 100), (7, 10), (500, 50)]:
            batch = CompetingClustersSimulation(
                ATTACK, 20, np.random.default_rng(1), engine="batch"
            ).run(n_events, record_every=record_every)
            scalar = CompetingClustersSimulation(
                ATTACK, 20, np.random.default_rng(1), engine="scalar"
            ).run(n_events, record_every=record_every)
            assert batch.events.tolist() == scalar.events.tolist()
            assert batch.safe_fraction.shape == scalar.safe_fraction.shape
            assert batch.polluted_fraction.shape == scalar.polluted_fraction.shape
            assert batch.n_clusters == scalar.n_clusters

    def test_series_starts_all_safe_under_delta(self):
        series = CompetingClustersSimulation(
            ATTACK, 25, np.random.default_rng(3)
        ).run(200, record_every=20)
        assert series.safe_fraction[0] == 1.0
        assert series.polluted_fraction[0] == 0.0

    def test_fractions_bounded_and_monotone_population(self):
        series = CompetingClustersSimulation(
            ModelParameters(mu=0.3, d=0.9), 300, np.random.default_rng(5)
        ).run(2000, record_every=100)
        total = series.safe_fraction + series.polluted_fraction
        assert np.all(total <= 1.0 + 1e-12)
        assert np.all(series.safe_fraction >= 0.0)
        assert np.all(series.polluted_fraction >= 0.0)

    def test_occupancy_tracks_scalar_engine(self):
        """Same population, same horizon: the two engines' mean occupancy
        curves agree (averaged over seeded replications)."""
        params = ModelParameters(core_size=7, spare_max=7, k=1, mu=0.25, d=0.9)
        n_clusters, n_events, record = 50, 1500, 300
        curves = {}
        for engine in ("batch", "scalar"):
            safe = []
            for replication in range(12):
                series = CompetingClustersSimulation(
                    params,
                    n_clusters,
                    np.random.default_rng(300 + replication),
                    engine=engine,
                ).run(n_events, record_every=record)
                safe.append(series.safe_fraction)
            curves[engine] = np.mean(safe, axis=0)
        gap = np.max(np.abs(curves["batch"] - curves["scalar"]))
        assert gap < 0.06

    def test_deterministic_under_seed(self):
        runs = [
            BatchCompetingClustersSimulation(
                ATTACK, 100, np.random.default_rng(11)
            ).run(500, record_every=100)
            for _ in range(2)
        ]
        assert np.array_equal(runs[0].safe_fraction, runs[1].safe_fraction)
        assert np.array_equal(
            runs[0].polluted_fraction, runs[1].polluted_fraction
        )

    def test_all_clusters_eventually_absorb(self):
        series = CompetingClustersSimulation(
            ModelParameters(mu=0.1, d=0.5), 50, np.random.default_rng(9)
        ).run(30_000, record_every=10_000)
        assert series.safe_fraction[-1] + series.polluted_fraction[-1] < 0.05

    def test_absorbing_initial_handled_identically_by_both_engines(self):
        """Initially-merged clusters start absorbed on both engines: no
        events reach them and the occupancy series stays flat at zero."""
        for engine in ("batch", "scalar"):
            series = CompetingClustersSimulation(
                ATTACK,
                8,
                np.random.default_rng(2),
                initial=State(0, 0, 0),
                engine=engine,
            ).run(50, record_every=10)
            assert np.all(series.safe_fraction == 0.0), engine
            assert np.all(series.polluted_fraction == 0.0), engine

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            CompetingClustersSimulation(ATTACK, 0, rng)
        with pytest.raises(ValueError):
            CompetingClustersSimulation(ATTACK, 5, rng, engine="quantum")

    def test_engine_property(self):
        rng = np.random.default_rng(0)
        assert CompetingClustersSimulation(ATTACK, 5, rng).engine == "batch"
        assert (
            CompetingClustersSimulation(ATTACK, 5, rng, engine="scalar").engine
            == "scalar"
        )


class TestSkipMode:
    """Event-axis geometric skip sampling: exact in law, fewer draws."""

    def test_matches_closed_form(self):
        fate = ClusterModel(ATTACK).cluster_fate("delta")
        summary = batch_monte_carlo_summary(
            ATTACK, np.random.default_rng(31), runs=30_000, mode="skip"
        )
        assert summary.mean_time_safe == pytest.approx(
            fate.expected_time_safe, rel=0.03
        )
        assert summary.mean_time_polluted == pytest.approx(
            fate.expected_time_polluted, rel=0.15, abs=0.05
        )
        assert summary.p_polluted_merge == pytest.approx(
            fate.p_polluted_merge, abs=0.01
        )

    def test_matches_event_mode_statistics(self):
        skip = batch_monte_carlo_summary(
            ATTACK, np.random.default_rng(5), runs=20_000, mode="skip"
        )
        event = batch_monte_carlo_summary(
            ATTACK, np.random.default_rng(5), runs=20_000, mode="event"
        )
        assert skip.mean_time_safe == pytest.approx(
            event.mean_time_safe, rel=0.05
        )
        assert skip.p_safe_split == pytest.approx(
            event.p_safe_split, abs=0.02
        )
        assert skip.mean_first_safe_sojourn == pytest.approx(
            event.mean_first_safe_sojourn, rel=0.05
        )

    def test_deterministic_under_seed(self):
        runs = [
            batch_monte_carlo_summary(
                ATTACK, np.random.default_rng(8), runs=400, mode="skip"
            )
            for _ in range(2)
        ]
        assert runs[0] == runs[1]

    def test_budget_error_raised(self):
        params = ModelParameters(mu=0.0, d=0.0)
        engine = BatchClusterEngine(params, np.random.default_rng(0))
        with pytest.raises(SimulationBudgetError):
            run_batch_trajectories(engine, 50, max_steps=2, mode="skip")

    def test_unknown_mode_rejected(self):
        engine = BatchClusterEngine(ATTACK, np.random.default_rng(0))
        with pytest.raises(ValueError, match="mode"):
            run_batch_trajectories(engine, 5, mode="warp")

    def test_dwell_is_geometric(self):
        """The dwell law of a self-looping state is Geometric(1-p_stay)."""
        engine = BatchClusterEngine(ATTACK, np.random.default_rng(17))
        rows = engine.rows
        own = rows.targets == np.arange(rows.n_states)[:, None]
        stay = np.where(own, rows.probs, 0.0).sum(axis=1)
        transient = np.flatnonzero(
            engine.is_transient(np.arange(rows.n_states)) & (stay > 0.2)
        )
        index = int(transient[0])
        draws = engine.skip_dwell(
            np.full(50_000, index, dtype=np.intp), cap=10**6
        )
        expected = 1.0 / (1.0 - stay[index])
        assert draws.min() >= 1
        assert draws.mean() == pytest.approx(expected, rel=0.05)


class TestChunkedSummary:
    def test_chunked_matches_unchunked_statistics(self):
        whole = batch_monte_carlo_summary(
            ATTACK, np.random.default_rng(3), runs=24_000, mode="skip"
        )
        chunked = batch_monte_carlo_summary(
            ATTACK,
            np.random.default_rng(3),
            runs=24_000,
            mode="skip",
            chunk_size=5_000,
        )
        assert chunked.runs == 24_000
        assert chunked.mean_time_safe == pytest.approx(
            whole.mean_time_safe, rel=0.04
        )
        assert chunked.p_polluted_merge == pytest.approx(
            whole.p_polluted_merge, abs=0.01
        )
        assert (
            chunked.p_safe_merge
            + chunked.p_safe_split
            + chunked.p_polluted_merge
        ) == pytest.approx(1.0, abs=1e-12)

    def test_chunked_deterministic(self):
        runs = [
            batch_monte_carlo_summary(
                ATTACK,
                np.random.default_rng(3),
                runs=3_000,
                chunk_size=1_000,
            )
            for _ in range(2)
        ]
        assert runs[0] == runs[1]

    def test_accumulator_matches_direct_formulas(self):
        engine = BatchClusterEngine(ATTACK, np.random.default_rng(12))
        batch = run_batch_trajectories(engine, 4_000)
        accumulator = TrajectorySummaryAccumulator()
        accumulator.update(batch)
        summary = accumulator.summary()
        direct = batch_monte_carlo_summary(
            ATTACK, np.random.default_rng(12), runs=4_000
        )
        assert summary.runs == direct.runs
        assert summary.mean_time_safe == pytest.approx(
            direct.mean_time_safe, rel=1e-12
        )
        assert summary.sem_time_safe == pytest.approx(
            direct.sem_time_safe, rel=1e-9
        )
        assert summary.p_safe_split == direct.p_safe_split

    def test_memory_lean_dtypes(self):
        engine = BatchClusterEngine(ATTACK, np.random.default_rng(1))
        batch = run_batch_trajectories(engine, 500, mode="skip")
        assert batch.steps.dtype == np.int32
        assert batch.time_safe.dtype == np.int32

    def test_invalid_chunk_size(self):
        with pytest.raises(ValueError, match="chunk_size"):
            batch_monte_carlo_summary(
                ATTACK, np.random.default_rng(0), runs=10, chunk_size=0
            )


class TestEventAxisCompeting:
    def test_event_axis_matches_recording_semantics(self):
        for n_events, record_every in [(100, 30), (100, 100), (7, 10)]:
            per_event = BatchCompetingClustersSimulation(
                ATTACK, 20, np.random.default_rng(1)
            ).run(n_events, record_every=record_every)
            event_axis = BatchCompetingClustersSimulation(
                ATTACK, 20, np.random.default_rng(1), event_batching=True
            ).run(n_events, record_every=record_every)
            assert per_event.events.tolist() == event_axis.events.tolist()
            assert (
                per_event.safe_fraction.shape
                == event_axis.safe_fraction.shape
            )

    def test_occupancy_tracks_per_event_engine(self):
        """Replication-averaged curves of the two dispatchers agree."""
        params = ModelParameters(
            core_size=7, spare_max=7, k=1, mu=0.25, d=0.9
        )
        curves = {}
        for event_batching in (False, True):
            safe = []
            for replication in range(10):
                series = BatchCompetingClustersSimulation(
                    params,
                    400,
                    np.random.default_rng(700 + replication),
                    event_batching=event_batching,
                ).run(6_000, record_every=1_000)
                safe.append(series.safe_fraction)
            curves[event_batching] = np.mean(safe, axis=0)
        gap = np.max(np.abs(curves[True] - curves[False]))
        assert gap < 0.04

    def test_deterministic_under_seed(self):
        runs = [
            BatchCompetingClustersSimulation(
                ATTACK, 100, np.random.default_rng(11), event_batching=True
            ).run(500, record_every=100)
            for _ in range(2)
        ]
        assert np.array_equal(runs[0].safe_fraction, runs[1].safe_fraction)

    def test_absorbing_initial_stays_flat(self):
        series = BatchCompetingClustersSimulation(
            ATTACK,
            8,
            np.random.default_rng(2),
            initial=State(0, 0, 0),
            event_batching=True,
        ).run(50, record_every=10)
        assert np.all(series.safe_fraction == 0.0)
        assert np.all(series.polluted_fraction == 0.0)

    def test_all_clusters_eventually_absorb(self):
        series = BatchCompetingClustersSimulation(
            ModelParameters(mu=0.1, d=0.5),
            50,
            np.random.default_rng(9),
            event_batching=True,
        ).run(30_000, record_every=10_000)
        assert (
            series.safe_fraction[-1] + series.polluted_fraction[-1] < 0.05
        )


VARIANT_PARAMS = ModelParameters(
    core_size=7, spare_max=7, k=3, mu=0.2, d=0.85
)

ADVERSARY_NAMES = ("strong", "passive", "greedy-leave")


class TestVariantEquivalence:
    """Property-style matrix: every adversary x churn kind on the batch
    tier agrees with the policy chain's closed forms and the scalar
    member-list oracle (seeded, tolerant)."""

    @pytest.fixture(scope="class")
    def chains(self):
        return {
            name: build_policy_chain(
                VARIANT_PARAMS, COUNT_POLICIES[name]
            )
            for name in ADVERSARY_NAMES
        }

    @staticmethod
    def _closed_forms(chain):
        """Expected phase times and absorption mass from the chain's
        fundamental matrix (works for any policy chain, polluted-split
        class included)."""
        from repro.core.statespace import Category

        transient = chain.transient_matrix
        size = transient.shape[0]
        start = chain.transient_index_of(
            State(VARIANT_PARAMS.spare_max // 2, 0, 0)
        )
        alpha = np.zeros(size)
        alpha[start] = 1.0
        occupancy = np.linalg.solve(
            (np.eye(size) - transient).T, alpha
        )
        absorption = {
            category: float(
                occupancy @ chain.absorbing_block(category).sum(axis=1)
            )
            for category in chain.closed_categories
        }
        return (
            float(occupancy @ chain.safe_indicator()),
            absorption.get(Category.POLLUTED_MERGE, 0.0),
        )

    @pytest.mark.parametrize("adversary", ADVERSARY_NAMES)
    def test_iid_kinds_match_policy_chain(self, adversary, chains):
        """Bernoulli/Poisson churn reduce to the mixed policy rows; the
        skip-mode batch run must sit on the chain's closed forms."""
        expected_safe, p_polluted_merge = self._closed_forms(
            chains[adversary]
        )
        summary = batch_monte_carlo_summary(
            VARIANT_PARAMS,
            np.random.default_rng(41),
            runs=20_000,
            adversary=adversary,
            mode="skip",
        )
        assert summary.mean_time_safe == pytest.approx(
            expected_safe, rel=0.04
        )
        assert summary.p_polluted_merge == pytest.approx(
            p_polluted_merge, abs=0.01
        )

    @pytest.mark.parametrize("adversary", ADVERSARY_NAMES)
    def test_iid_kinds_match_scalar_oracle(self, adversary):
        batch = batch_monte_carlo_summary(
            VARIANT_PARAMS,
            np.random.default_rng(43),
            runs=12_000,
            adversary=adversary,
            mode="skip",
        )
        scalar = monte_carlo_summary(
            VARIANT_PARAMS,
            np.random.default_rng(43),
            runs=1_500,
            adversary=adversary,
        )
        assert batch.mean_time_safe == pytest.approx(
            scalar.mean_time_safe, rel=0.08
        )
        assert batch.p_polluted_merge == pytest.approx(
            scalar.p_polluted_merge, abs=0.02
        )

    @pytest.mark.parametrize("adversary", ADVERSARY_NAMES)
    @pytest.mark.parametrize(
        "churn", ("exponential-sessions", "pareto-sessions")
    )
    def test_session_schedules_match_scalar_oracle(self, adversary, churn):
        """Lane-tiled schedule consumption reproduces the oracle's
        sequential stream design within statistical tolerance."""
        from repro.scenario.registry import CHURN_KIND_LAWS, CHURN_MODELS

        options = {"horizon": 150_000.0}
        law = CHURN_KIND_LAWS.get(churn)(
            np.random.default_rng(7), VARIANT_PARAMS, **options
        )
        batch = batch_monte_carlo_summary(
            VARIANT_PARAMS,
            np.random.default_rng(47),
            runs=8_000,
            adversary=adversary,
            kind_schedule=law.schedule,
        )
        stream = CHURN_MODELS.get(churn)(
            np.random.default_rng(7), VARIANT_PARAMS, **options
        )
        scalar = monte_carlo_summary(
            VARIANT_PARAMS,
            np.random.default_rng(47),
            runs=1_200,
            adversary=adversary,
            events=stream,
        )
        assert batch.mean_time_safe == pytest.approx(
            scalar.mean_time_safe, rel=0.12
        )
        assert batch.p_polluted_merge == pytest.approx(
            scalar.p_polluted_merge, abs=0.025
        )

    def test_variant_rows_reject_unknown_adversary(self):
        with pytest.raises(ValueError, match="unknown count-level"):
            batch_monte_carlo_summary(
                VARIANT_PARAMS,
                np.random.default_rng(0),
                runs=10,
                adversary="martian",
            )
