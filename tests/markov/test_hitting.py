"""Unit tests for the first-passage (hitting) analysis."""

import numpy as np
import pytest

from repro.markov.hitting import HittingAnalysis
from repro.markov.linalg import MarkovNumericsError

# 3 transient states: 0 (start), 1 (target), 2 (pre-absorbing).
# From 0: 0.3 -> 1, 0.2 -> 2, 0.5 absorb.  From 2: 0.4 -> 1, 0.6 absorb.
BLOCK = np.array(
    [
        [0.0, 0.3, 0.2],
        [0.0, 0.0, 0.0],
        [0.0, 0.4, 0.0],
    ]
)
TARGET = np.array([0.0, 1.0, 0.0])
START = np.array([1.0, 0.0, 0.0])


def analysis() -> HittingAnalysis:
    return HittingAnalysis.from_indicator(BLOCK, TARGET, START)


class TestHitProbability:
    def test_two_path_hand_computation(self):
        # Hit at step 1 w.p. 0.3, or via state 2 at step 2 w.p. 0.2*0.4.
        assert analysis().hit_probability() == pytest.approx(0.38)

    def test_starting_inside_target(self):
        inside = HittingAnalysis.from_indicator(
            BLOCK, TARGET, np.array([0.0, 1.0, 0.0])
        )
        assert inside.hit_probability() == 1.0
        assert inside.hitting_time_pmf(3)[0] == 1.0

    def test_unreachable_target(self):
        unreachable = HittingAnalysis.from_indicator(
            np.array([[0.5]]), np.array([0.0]), np.array([1.0])
        )
        assert unreachable.hit_probability() == 0.0
        with pytest.raises(MarkovNumericsError, match="unreachable"):
            unreachable.expected_hitting_time_given_hit()


class TestHittingLaw:
    def test_pmf_values(self):
        pmf = analysis().hitting_time_pmf(4)
        assert pmf[0] == 0.0
        assert pmf[1] == pytest.approx(0.3)
        assert pmf[2] == pytest.approx(0.08)
        assert pmf[3] == pytest.approx(0.0)

    def test_pmf_sums_to_hit_probability(self):
        pmf = analysis().hitting_time_pmf(50)
        assert pmf.sum() == pytest.approx(analysis().hit_probability())

    def test_survival_complements_pmf(self):
        a = analysis()
        pmf = a.hitting_time_pmf(5)
        survival = a.hitting_time_survival(5)
        assert np.allclose(survival, 1.0 - np.cumsum(pmf))

    def test_expected_time_given_hit(self):
        # E[T | hit] = (1*0.3 + 2*0.08) / 0.38.
        expected = (0.3 + 2 * 0.08) / 0.38
        assert analysis().expected_hitting_time_given_hit() == pytest.approx(
            expected
        )

    def test_negative_horizon_rejected(self):
        with pytest.raises(MarkovNumericsError):
            analysis().hitting_time_pmf(-1)


class TestComponentsConstructor:
    def test_equivalent_to_indicator_form(self):
        direct = HittingAnalysis.from_components(
            taboo_block=np.array([[0.0, 0.2], [0.0, 0.0]]),
            entry_vector=np.array([0.3, 0.4]),
            initial_outside=np.array([1.0, 0.0]),
        )
        assert direct.hit_probability() == pytest.approx(0.38)

    def test_entry_vector_validated(self):
        with pytest.raises(MarkovNumericsError, match="entry"):
            HittingAnalysis.from_components(
                taboo_block=np.array([[0.0]]),
                entry_vector=np.array([1.5]),
                initial_outside=np.array([1.0]),
            )

    def test_indicator_must_be_binary(self):
        with pytest.raises(MarkovNumericsError, match="0/1"):
            HittingAnalysis.from_indicator(
                BLOCK, np.array([0.0, 0.5, 0.0]), START
            )

    def test_shape_mismatches(self):
        with pytest.raises(MarkovNumericsError):
            HittingAnalysis.from_indicator(BLOCK, TARGET, np.ones(2))
        with pytest.raises(MarkovNumericsError):
            HittingAnalysis.from_components(
                taboo_block=np.array([[0.0]]),
                entry_vector=np.array([0.3, 0.1]),
                initial_outside=np.array([1.0]),
            )
