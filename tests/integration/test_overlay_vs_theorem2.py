"""Integration: Theorem 2 vs the competing-clusters simulation.

The empirical fraction of safe/polluted clusters in a simulated
n-cluster overlay must track the analytic slowed-down matrix power.
"""

import numpy as np
import pytest

from repro.core.overlay_model import OverlayModel
from repro.core.parameters import ModelParameters
from repro.simulation.metrics import SeriesAccumulator
from repro.simulation.overlay_sim import CompetingClustersSimulation

PARAMS = ModelParameters(core_size=7, spare_max=7, k=1, mu=0.25, d=0.9)
N_CLUSTERS = 60
N_EVENTS = 3000
RECORD = 300


@pytest.fixture(scope="module")
def analytic_series():
    overlay = OverlayModel(PARAMS, N_CLUSTERS)
    return overlay.proportion_series("delta", N_EVENTS, record_every=RECORD)


@pytest.fixture(scope="module")
def empirical_series():
    safe = SeriesAccumulator()
    polluted = SeriesAccumulator()
    for replication in range(30):
        rng = np.random.default_rng(1000 + replication)
        simulation = CompetingClustersSimulation(
            PARAMS, N_CLUSTERS, rng, initial="delta"
        )
        series = simulation.run(N_EVENTS, record_every=RECORD)
        safe.add(series.safe_fraction)
        polluted.add(series.polluted_fraction)
    return safe.mean(), polluted.mean()


class TestTheorem2:
    def test_safe_fraction_tracks_analytic(self, analytic_series, empirical_series):
        empirical_safe, _ = empirical_series
        gap = np.max(np.abs(empirical_safe - analytic_series.safe_fraction))
        assert gap < 0.04

    def test_polluted_fraction_tracks_analytic(
        self, analytic_series, empirical_series
    ):
        _, empirical_polluted = empirical_series
        gap = np.max(
            np.abs(empirical_polluted - analytic_series.polluted_fraction)
        )
        assert gap < 0.02

    def test_both_decay_to_zero(self, analytic_series, empirical_series):
        empirical_safe, empirical_polluted = empirical_series
        assert analytic_series.safe_fraction[-1] < 0.6
        assert empirical_safe[-1] == pytest.approx(
            analytic_series.safe_fraction[-1], abs=0.05
        )
        assert empirical_polluted[-1] < 0.05
