"""Unit tests for the protocol variants (join placement policies)."""

import numpy as np
import pytest

from repro.core.absorption import cluster_fate
from repro.core.initial import delta_distribution
from repro.core.parameters import ModelParameters
from repro.core.statespace import Category, State
from repro.core.variants import (
    JoinPolicy,
    build_variant_chain,
    variant_transition_distribution,
)

PARAMS = ModelParameters(core_size=7, spare_max=7, k=1, mu=0.2, d=0.9)


class TestVariantTransitions:
    def test_spare_first_delegates_to_paper_tree(self):
        from repro.core.transitions import transition_distribution

        state = State(3, 1, 1)
        assert variant_transition_distribution(
            state, PARAMS, JoinPolicy.SPARE_FIRST
        ) == transition_distribution(state, PARAMS)

    def test_direct_core_rows_are_distributions(self):
        from repro.core.statespace import StateSpace

        space = StateSpace(PARAMS, include_polluted_split=True)
        for state in space.transient:
            law = variant_transition_distribution(
                state, PARAMS, JoinPolicy.DIRECT_CORE
            )
            assert sum(law.values()) == pytest.approx(1.0), tuple(state)

    def test_malicious_joiner_can_take_core_seat(self):
        # From a clean state, the malicious joiner enters the core with
        # probability p_j * mu * C/(C+s+1) displacing an honest member.
        law = variant_transition_distribution(
            State(3, 0, 0), PARAMS, JoinPolicy.DIRECT_CORE
        )
        expected = 0.5 * 0.2 * (7 / 11)
        assert law[State(4, 1, 0)] == pytest.approx(expected)

    def test_honest_joiner_can_displace_malicious(self):
        law = variant_transition_distribution(
            State(3, 7, 0), PARAMS, JoinPolicy.DIRECT_CORE
        )
        # Honest join accepted at... x=7 polluted and s=3>1: Rule 2
        # still filters honest joins, so only malicious mass moves.
        assert State(4, 6, 1) not in law

    def test_direct_core_can_reach_polluted_split(self):
        # Safe state at the split edge: a malicious joiner stealing a
        # core seat pushes x past the quorum while s reaches Delta.
        law = variant_transition_distribution(
            State(6, 2, 0), PARAMS, JoinPolicy.DIRECT_CORE
        )
        target = State(7, 3, 0)
        assert target in law
        space = build_variant_chain(PARAMS, JoinPolicy.DIRECT_CORE).space
        assert space.categorize(target) is Category.POLLUTED_SPLIT


class TestVariantChains:
    def test_direct_core_chain_is_stochastic(self):
        chain = build_variant_chain(PARAMS, JoinPolicy.DIRECT_CORE)
        assert np.allclose(chain.matrix.sum(axis=1), 1.0)

    def test_polluted_split_class_present(self):
        chain = build_variant_chain(PARAMS, JoinPolicy.DIRECT_CORE)
        assert Category.POLLUTED_SPLIT in chain.closed_categories
        assert chain.space.model_size == chain.space.full_space_size

    def test_paper_chain_unchanged(self):
        from repro.core.matrix import ClusterChain

        variant = build_variant_chain(PARAMS, JoinPolicy.SPARE_FIRST)
        direct = ClusterChain(PARAMS)
        assert np.allclose(variant.matrix, direct.matrix)

    def test_direct_core_is_strictly_worse(self):
        paper = build_variant_chain(PARAMS, JoinPolicy.SPARE_FIRST)
        naive = build_variant_chain(PARAMS, JoinPolicy.DIRECT_CORE)
        paper_fate = cluster_fate(paper, delta_distribution(paper))
        naive_fate = cluster_fate(naive, delta_distribution(naive))
        assert naive_fate.expected_time_polluted > (
            1.5 * paper_fate.expected_time_polluted
        )
        assert naive_fate.p_polluted_absorption > (
            paper_fate.p_polluted_absorption
        )

    def test_direct_core_polluted_split_probability_positive(self):
        naive = build_variant_chain(PARAMS, JoinPolicy.DIRECT_CORE)
        fate = cluster_fate(naive, delta_distribution(naive))
        assert fate.p_polluted_split > 0.0
        assert "p(polluted-split)" in fate.as_dict()

    def test_mu_zero_policies_agree(self):
        clean = ModelParameters(core_size=7, spare_max=7, k=1, mu=0.0, d=0.9)
        paper = build_variant_chain(clean, JoinPolicy.SPARE_FIRST)
        naive = build_variant_chain(clean, JoinPolicy.DIRECT_CORE)
        paper_fate = cluster_fate(paper, delta_distribution(paper))
        naive_fate = cluster_fate(naive, delta_distribution(naive))
        # Without malicious peers the placement policy is irrelevant.
        assert naive_fate.expected_time_safe == pytest.approx(
            paper_fate.expected_time_safe
        )
        assert naive_fate.p_polluted_absorption == pytest.approx(0.0)


class TestAblationHelpers:
    def test_ablation_computes_and_dominates(self):
        from repro.analysis.ablations import (
            compute_join_policy_ablation,
            render_join_policy_ablation,
            spare_first_dominates,
        )

        points = compute_join_policy_ablation(mu_grid=(0.1, 0.3))
        assert len(points) == 4
        assert spare_first_dominates(points)
        text = render_join_policy_ablation(points)
        assert "direct-core" in text
