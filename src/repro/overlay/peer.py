"""Peers: certified identities with incarnation-limited identifiers.

A :class:`Peer` owns a key pair and a CA-issued certificate; its initial
identifier ``id0`` hashes the certificate fields (including ``t0``), and
its current identifier re-hashes ``id0`` with the current incarnation
number -- Section III-D's unpredictable, limited-lifetime identifiers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.overlay import identifiers
from repro.overlay.crypto import (
    Certificate,
    CertificateAuthority,
    KeyPair,
    SignedMessage,
    sign_message,
)
from repro.overlay.incarnation import IncarnationClock


@dataclass
class Peer:
    """One overlay participant.

    ``malicious`` tags adversary-controlled peers; honest code never
    reads the flag (honest peers cannot distinguish peer types,
    Section III-B) -- only the adversary and the metrics layer do.
    """

    name: str
    keys: KeyPair
    certificate: Certificate
    clock: IncarnationClock
    malicious: bool = False
    id_bits: int = identifiers.DEFAULT_ID_BITS
    _id0: int = field(init=False)

    def __post_init__(self) -> None:
        self._id0 = identifiers.initial_identifier(
            self.certificate.signed_fields(), self.id_bits
        )

    # -- identity ------------------------------------------------------------

    @property
    def initial_id(self) -> int:
        """``id0 = H(certificate fields)``."""
        return self._id0

    def incarnation_at(self, global_time: float) -> int:
        """The incarnation number the peer itself uses at ``global_time``."""
        return self.clock.own_incarnation(global_time)

    def identifier_at(self, global_time: float) -> int:
        """Current identifier ``H(id0 x k)``."""
        return identifiers.incarnation_identifier(
            self._id0, self.incarnation_at(global_time), self.id_bits
        )

    def identifier_for_incarnation(self, incarnation: int) -> int:
        """Identifier the peer would carry in a given incarnation."""
        return identifiers.incarnation_identifier(
            self._id0, incarnation, self.id_bits
        )

    def accepted_identifiers(self, global_time: float) -> frozenset[int]:
        """Identifiers correct observers accept for this peer right now
        (two of them inside the grace window, Property 1)."""
        return frozenset(
            self.identifier_for_incarnation(k)
            for k in self.clock.accepted_by_observer(global_time)
        )

    def identifier_is_valid(
        self, claimed_identifier: int, global_time: float
    ) -> bool:
        """Observer-side check of Property 1 for this peer."""
        return claimed_identifier in self.accepted_identifiers(global_time)

    def expiry_time(self, global_time: float) -> float:
        """When the peer's current incarnation expires (its own clock)."""
        return self.clock.own_expiry(global_time)

    # -- messaging -----------------------------------------------------------

    def sign(self, payload: bytes) -> SignedMessage:
        """Sign a payload, attaching the certificate (Section III-C)."""
        return sign_message(payload, self.keys, self.certificate)

    def __hash__(self) -> int:
        return hash(self.name)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Peer) and other.name == self.name

    def __repr__(self) -> str:
        tag = "malicious" if self.malicious else "honest"
        return f"Peer({self.name!r}, {tag})"


class PeerFactory:
    """Mints peers with CA-issued certificates and seeded key material.

    Key generation dominates simulation start-up, so the factory
    supports ``key_bits`` down-tuning and a ``lightweight`` mode used by
    the large-scale simulations (certificates are still issued and
    verified; only the RSA modulus shrinks).
    """

    def __init__(
        self,
        ca: CertificateAuthority,
        rng: np.random.Generator,
        lifetime: float,
        grace_window: float = 0.0,
        key_bits: int = 128,
        id_bits: int = identifiers.DEFAULT_ID_BITS,
        malicious_fraction: float = 0.0,
        max_clock_skew: float = 0.0,
    ) -> None:
        if not 0.0 <= malicious_fraction <= 1.0:
            raise ValueError(
                f"malicious_fraction must be in [0, 1], got {malicious_fraction}"
            )
        self._ca = ca
        self._rng = rng
        self._lifetime = lifetime
        self._grace_window = grace_window
        self._key_bits = key_bits
        self._id_bits = id_bits
        self._malicious_fraction = malicious_fraction
        self._max_clock_skew = min(max_clock_skew, grace_window / 2.0)
        self._counter = 0
        PeerFactory._instances += 1
        self._namespace = PeerFactory._instances

    #: Class-level counter namespacing default peer names, so peers
    #: minted by different factories (e.g. two overlays in one test)
    #: never collide on the name-based equality.
    _instances = 0

    def create(
        self,
        created_at: float,
        malicious: bool | None = None,
        name: str | None = None,
    ) -> Peer:
        """Mint one peer; ``malicious=None`` draws from the configured
        fraction (the adversary's ``mu``)."""
        self._counter += 1
        if name is None:
            name = f"peer-{self._namespace:03d}-{self._counter:06d}"
        if malicious is None:
            malicious = bool(self._rng.random() < self._malicious_fraction)
        keys = KeyPair.generate(self._rng, self._key_bits)
        certificate = self._ca.issue(name, keys.public, created_at)
        skew = (
            float(self._rng.uniform(-self._max_clock_skew, self._max_clock_skew))
            if self._max_clock_skew > 0.0
            else 0.0
        )
        clock = IncarnationClock(
            t0=created_at,
            lifetime=self._lifetime,
            grace_window=self._grace_window,
            skew=skew,
        )
        return Peer(
            name=name,
            keys=keys,
            certificate=certificate,
            clock=clock,
            malicious=malicious,
            id_bits=self._id_bits,
        )

    def create_many(
        self, count: int, created_at: float
    ) -> list[Peer]:
        """Mint ``count`` peers at once."""
        return [self.create(created_at) for _ in range(count)]
