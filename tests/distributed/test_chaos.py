"""Chaos suite: randomized kill/restart schedules over the fabric.

Real processes, real ``SIGKILL`` -- no cooperative shutdown anywhere.
A fixed-seed schedule (override with ``REPRO_CHAOS_SEED``) spawns a
watch-mode coordinator plus N workers as subprocesses, kills a random
victim at a random moment each round (landing at arbitrary phases:
during worker boot, mid-point, mid-RESULT, mid-publish), restarts the
fleet, and repeats until the sweep converges.  The submit path is
chaos-tested too: the ledger starts with the torn artifact of a
service SIGKILLed *mid-submit* (a partial batch of scheduled lines
ending in a torn fragment), and the sweep is then submitted for real
through ``POST /submit`` on a live :class:`ResultsService` -- the
retry a client would issue.

Invariants asserted after **every** kill, not just at the end:

* the ledger never records ``done`` for a key whose content-addressed
  store file is not readable ("done implies published");
* ledger replay never loses the grid (scheduled keys are stable).

Convergence asserted at the end:

* every point is done and the store is **byte-identical** to a serial
  :class:`~repro.scenario.runner.SweepRunner` run of the same
  document -- however many times points were killed and re-executed.
"""

import json
import os
import pathlib
import random
import signal
import socket
import subprocess
import sys
import time
import urllib.request

import pytest

from repro.distributed.ledger import SweepLedger
from repro.distributed.service import ResultsService
from repro.scenario.runner import SweepRunner
from repro.scenario.spec import load_scenario_document
from repro.scenario.store import JsonlAppender

SEED = int(os.environ.get("REPRO_CHAOS_SEED", "1105"))
N_WORKERS = 2
#: Kills before the final let-it-finish round.
KILL_ROUNDS = 4
#: Hard wall-clock budget for the whole schedule.
BUDGET_SECONDS = 300.0

#: Heavy enough that kills land mid-compute, light enough for CI.
DOCUMENT = {
    "name": "chaos-grid",
    "engine": "batch",
    "runs": 40_000,
    "seed": 47,
    "params": {"core_size": 5, "spare_max": 5, "k": 1, "mu": 0.2, "d": 0.9},
    "sweep": {
        "params.mu": [0.1, 0.2, 0.3, 0.4],
        "adversary": ["strong", "passive"],
    },
}


def _env() -> dict:
    src = str(pathlib.Path(__file__).resolve().parents[2] / "src")
    env = dict(os.environ)
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return env


def _free_port() -> int:
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


def _spawn_coordinator(port, ledger, cache, log) -> subprocess.Popen:
    return subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "sweep-coordinator",
            "--watch",
            "--port",
            str(port),
            "--ledger",
            str(ledger),
            "--cache-dir",
            str(cache),
            "--lease-timeout",
            "30",
        ],
        env=_env(),
        stdout=log,
        stderr=log,
    )


def _spawn_worker(port, index, log) -> subprocess.Popen:
    return subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "worker",
            "--port",
            str(port),
            "--id",
            f"chaos-w{index}",
            "--connect-timeout",
            "60",
        ],
        env=_env(),
        stdout=log,
        stderr=log,
    )


def _sigkill(process: subprocess.Popen) -> None:
    try:
        process.send_signal(signal.SIGKILL)
    except ProcessLookupError:
        pass
    process.wait(timeout=30)


def _reap(processes) -> None:
    for process in processes:
        if process.poll() is None:
            _sigkill(process)


def _assert_done_implies_published(ledger, cache, expected_keys) -> None:
    """The core durability invariant, checked after every kill."""
    if not ledger.exists():
        return
    state = SweepLedger.replay_path(ledger)
    for key in state.done:
        assert (cache / f"{key}.json").exists(), (
            f"ledger says done but store has no file: {key}"
        )
    # The grid itself is never lost by crashes.
    assert expected_keys <= set(state.scheduled)


def _ledger_complete(ledger, expected_keys) -> bool:
    if not ledger.exists():
        return False
    state = SweepLedger.replay_path(ledger)
    return expected_keys <= state.done


@pytest.mark.chaos
@pytest.mark.parametrize("seed", [SEED])
def test_chaos_schedule_converges_to_serial_bytes(tmp_path, seed):
    rng = random.Random(seed)
    specs = load_scenario_document(DOCUMENT).expand()
    expected_keys = {spec.key() for spec in specs}

    # The ground truth: one serial run of the same document.
    serial_dir = tmp_path / "serial"
    SweepRunner(cache_dir=serial_dir).sweep(specs)

    cache = tmp_path / "cache"
    ledger = tmp_path / "ledger.jsonl"

    # -- mid-submit crash artifact ------------------------------------------
    # A previous service instance was SIGKILLed partway through the
    # submit batch: some scheduled lines made it, the last one is torn
    # mid-record, the submitted record never landed.
    with JsonlAppender(ledger) as torn:
        for spec in specs[:3]:
            torn.append(
                {
                    "event": "scheduled",
                    "key": spec.key(),
                    "spec": spec.to_dict(),
                }
            )
    with open(ledger, "ab") as handle:
        fragment = json.dumps(
            {
                "event": "scheduled",
                "key": specs[3].key(),
                "spec": specs[3].to_dict(),
            }
        ).encode()
        handle.write(fragment[: len(fragment) // 2])  # no newline: torn

    # -- the client retries the submit, for real, over HTTP -----------------
    with ResultsService(cache, ledger_path=ledger).start() as service:
        request = urllib.request.Request(
            f"http://127.0.0.1:{service.port}/submit",
            data=json.dumps(DOCUMENT).encode(),
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with urllib.request.urlopen(request, timeout=10) as reply:
            submitted = json.loads(reply.read())
    assert submitted["points"] == len(specs)
    state = SweepLedger.replay_path(ledger)
    assert set(state.scheduled) == expected_keys  # torn fragment isolated
    assert set(state.sweeps[submitted["sweep"]]) == expected_keys

    # -- the kill schedule ---------------------------------------------------
    deadline = time.monotonic() + BUDGET_SECONDS
    log = open(tmp_path / "chaos.log", "ab")
    kills = {"coordinator": 0, "worker": 0}
    try:
        for round_number in range(KILL_ROUNDS + 1):
            assert time.monotonic() < deadline, "chaos budget exhausted"
            port = _free_port()
            coordinator = _spawn_coordinator(port, ledger, cache, log)
            workers = [
                _spawn_worker(port, index, log)
                for index in range(N_WORKERS)
            ]
            fleet = [coordinator, *workers]
            try:
                if round_number < KILL_ROUNDS:
                    # Let the round run into a random phase: worker
                    # boot, claim, mid-point, mid-RESULT, mid-publish.
                    time.sleep(rng.uniform(0.3, 2.5))
                    victim_index = rng.randrange(len(fleet))
                    victim = fleet[victim_index]
                    kills[
                        "coordinator" if victim is coordinator else "worker"
                    ] += 1
                    _sigkill(victim)
                    time.sleep(rng.uniform(0.1, 0.5))
                    _assert_done_implies_published(
                        ledger, cache, expected_keys
                    )
                else:
                    # Final round: no kills, run to convergence.
                    while not _ledger_complete(ledger, expected_keys):
                        assert (
                            time.monotonic() < deadline
                        ), "sweep did not converge within the budget"
                        time.sleep(0.2)
            finally:
                _reap(fleet)
            _assert_done_implies_published(ledger, cache, expected_keys)
    finally:
        log.close()

    assert kills["coordinator"] + kills["worker"] == KILL_ROUNDS

    # -- convergence ---------------------------------------------------------
    state = SweepLedger.replay_path(ledger)
    assert expected_keys <= state.done
    assert not (set(state.failed) & expected_keys)
    serial_files = sorted(p.name for p in serial_dir.glob("*.json"))
    chaos_files = sorted(p.name for p in cache.glob("*.json"))
    assert serial_files == chaos_files
    for name in serial_files:
        assert (serial_dir / name).read_bytes() == (
            cache / name
        ).read_bytes(), f"diverged after chaos: {name}"


def test_single_fixed_kill_mid_sweep_recovers(tmp_path):
    """The deterministic miniature: one worker SIGKILLed mid-sweep,
    one coordinator SIGKILLed mid-sweep, then clean convergence --
    the schedule CI exercises on every push even when the full
    randomized test is filtered out."""
    specs = load_scenario_document(DOCUMENT).expand()[:4]
    expected_keys = {spec.key() for spec in specs}
    serial_dir = tmp_path / "serial"
    SweepRunner(cache_dir=serial_dir).sweep(specs)

    cache = tmp_path / "cache"
    ledger = tmp_path / "ledger.jsonl"
    with SweepLedger(ledger) as seed_ledger:
        seed_ledger.record_scheduled(specs)

    log = open(tmp_path / "chaos.log", "ab")
    try:
        # Round 1: kill a worker mid-sweep.
        port = _free_port()
        coordinator = _spawn_coordinator(port, ledger, cache, log)
        workers = [
            _spawn_worker(port, index, log) for index in range(N_WORKERS)
        ]
        time.sleep(1.5)
        _sigkill(workers[0])
        _assert_done_implies_published(ledger, cache, expected_keys)
        # Round 2: kill the coordinator too.
        time.sleep(0.5)
        _sigkill(coordinator)
        _reap(workers)
        _assert_done_implies_published(ledger, cache, expected_keys)
        # Round 3: fresh fleet, run to convergence.
        port = _free_port()
        coordinator = _spawn_coordinator(port, ledger, cache, log)
        workers = [
            _spawn_worker(port, index, log) for index in range(N_WORKERS)
        ]
        deadline = time.monotonic() + 120
        while not _ledger_complete(ledger, expected_keys):
            assert time.monotonic() < deadline, "did not converge"
            time.sleep(0.2)
        _reap([coordinator, *workers])
    finally:
        log.close()

    _assert_done_implies_published(ledger, cache, expected_keys)
    for spec in specs:
        name = f"{spec.key()}.json"
        assert (serial_dir / name).read_bytes() == (
            cache / name
        ).read_bytes()
