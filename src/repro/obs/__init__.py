"""Dependency-free telemetry for the fabric: metrics, spans, timelines.

Three layers, each importable alone (deliberately NOT imported here:
:mod:`repro.scenario.store` imports :mod:`repro.obs.metrics`, while
:mod:`repro.obs.trace` imports the store's appender -- eager package
imports would tie that knot into a cycle):

* :mod:`repro.obs.metrics` -- process-local counters/gauges/histograms
  plus the Prometheus text encoder behind ``GET /metrics``;
* :mod:`repro.obs.trace` -- trace ids minted at sweep submit, spans
  emitted as torn-tail-safe JSONL under ``$REPRO_TELEMETRY``;
* :mod:`repro.obs.timeline` -- the ``repro trace <sweep-id>`` join of
  span JSONL and ledger replay into a per-point timeline.
"""

__all__ = ["metrics", "timeline", "trace"]
