"""Unit tests for the labeled MarkovChain wrapper."""

import numpy as np
import pytest

from repro.markov.chain import MarkovChain
from repro.markov.linalg import MarkovNumericsError

MATRIX = np.array(
    [
        [0.5, 0.3, 0.2],
        [0.0, 0.4, 0.6],
        [0.0, 0.0, 1.0],
    ]
)
LABELS = ["start", "middle", "end"]


@pytest.fixture
def chain() -> MarkovChain:
    return MarkovChain(MATRIX, LABELS)


class TestConstruction:
    def test_validates_stochasticity(self):
        with pytest.raises(MarkovNumericsError):
            MarkovChain(np.array([[0.5, 0.4], [0.0, 1.0]]))

    def test_rejects_duplicate_labels(self):
        with pytest.raises(MarkovNumericsError, match="unique"):
            MarkovChain(np.eye(2), ["a", "a"])

    def test_rejects_wrong_label_count(self):
        with pytest.raises(MarkovNumericsError, match="labels"):
            MarkovChain(np.eye(2), ["a"])

    def test_default_labels_are_indices(self):
        chain = MarkovChain(np.eye(3))
        assert chain.labels == [0, 1, 2]

    def test_matrix_view_is_readonly(self, chain):
        with pytest.raises(ValueError):
            chain.matrix[0, 0] = 0.9


class TestAccessors:
    def test_probability_by_label(self, chain):
        assert chain.probability("start", "middle") == 0.3

    def test_index_of_unknown_label(self, chain):
        with pytest.raises(KeyError, match="unknown"):
            chain.index_of("nope")

    def test_absorbing_states(self, chain):
        assert chain.absorbing_states() == ["end"]

    def test_transient_states(self, chain):
        assert chain.transient_states() == ["start", "middle"]

    def test_submatrix(self, chain):
        block = chain.submatrix(["start", "middle"], ["end"])
        assert np.allclose(block, [[0.2], [0.6]])

    def test_indicator(self, chain):
        flags = chain.indicator(["middle"])
        assert np.allclose(flags, [0.0, 1.0, 0.0])


class TestTransientBehaviour:
    def test_distribution_after_steps(self, chain):
        law0 = np.array([1.0, 0.0, 0.0])
        law2 = chain.distribution_after(law0, 2)
        assert np.isclose(law2.sum(), 1.0)
        assert np.allclose(law2, law0 @ MATRIX @ MATRIX)

    def test_hitting_probability_series_is_monotone_for_absorbing(self, chain):
        series = chain.hitting_probability_series(
            np.array([1.0, 0.0, 0.0]), ["end"], 20
        )
        assert all(b >= a - 1e-12 for a, b in zip(series, series[1:]))
        assert series[-1] > 0.99

    def test_wrong_initial_shape(self, chain):
        with pytest.raises(MarkovNumericsError):
            chain.distribution_after(np.array([1.0, 0.0]), 1)


class TestSimulation:
    def test_sample_path_length_and_labels(self, chain, rng):
        path = chain.sample_path("start", 10, rng)
        assert len(path) == 11
        assert set(path) <= set(LABELS)

    def test_sample_path_from_distribution(self, chain, rng):
        path = chain.sample_path(np.array([0.5, 0.5, 0.0]), 3, rng)
        assert path[0] in ("start", "middle")

    def test_sample_until_absorption(self, chain, rng):
        path = chain.sample_until("start", ["end"], rng)
        assert path[-1] == "end"
        assert all(label != "end" for label in path[:-1])

    def test_sample_until_budget(self, rng):
        # a and b alternate forever; the absorbing target c is
        # unreachable from a, so the step budget must trip.
        loop = MarkovChain(
            np.array(
                [
                    [0.0, 1.0, 0.0],
                    [1.0, 0.0, 0.0],
                    [0.0, 0.0, 1.0],
                ]
            ),
            ["a", "b", "c"],
        )
        with pytest.raises(RuntimeError, match="no absorption"):
            loop.sample_until("a", ["c"], rng, max_steps=50)
