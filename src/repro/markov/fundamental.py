"""Absorbing-chain analysis: fundamental matrix and derived quantities.

Given a chain whose state space splits into transient states ``T`` and
absorbing classes ``A_1 .. A_r``, the fundamental matrix
``N = (I - Q)^{-1}`` (with ``Q`` the transient-to-transient block) yields

* expected number of visits to each transient state,
* expected number of steps before absorption,
* absorption probabilities into each absorbing class
  (paper's Relation (9)).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.markov.linalg import (
    MarkovNumericsError,
    as_square_array,
    solve_fundamental,
    substochastic_check,
)


@dataclass(frozen=True)
class AbsorbingAnalysis:
    """Closed-form analysis of an absorbing Markov chain.

    Parameters
    ----------
    transient_block:
        Square matrix ``Q`` of transitions among transient states.
    absorbing_blocks:
        Mapping-like sequence of ``(name, block)`` pairs where ``block``
        has one row per transient state and one column per state of the
        corresponding absorbing class.
    initial:
        Probability row vector over transient states.  Mass placed on
        absorbing states should be handled by the caller before reaching
        this class (the paper's experiments always start transient).
    """

    transient_block: np.ndarray
    absorbing_blocks: tuple[tuple[str, np.ndarray], ...]
    initial: np.ndarray
    _fundamental: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        q = as_square_array(self.transient_block, name="transient block")
        substochastic_check(q)
        alpha = np.asarray(self.initial, dtype=float)
        if alpha.shape != (q.shape[0],):
            raise MarkovNumericsError(
                f"initial vector has shape {alpha.shape}, expected ({q.shape[0]},)"
            )
        if np.any(alpha < -1e-12):
            raise MarkovNumericsError("initial vector has negative mass")
        total_out = q.sum(axis=1).copy()
        for name, block in self.absorbing_blocks:
            arr = np.asarray(block, dtype=float)
            if arr.shape[0] != q.shape[0]:
                raise MarkovNumericsError(
                    f"absorbing block {name!r} has {arr.shape[0]} rows, "
                    f"expected {q.shape[0]}"
                )
            total_out += arr.sum(axis=1)
        if np.any(np.abs(total_out - 1.0) > 1e-8):
            worst = int(np.argmax(np.abs(total_out - 1.0)))
            raise MarkovNumericsError(
                f"transient row {worst} plus absorbing blocks sums to "
                f"{total_out[worst]!r}, expected 1.0"
            )
        object.__setattr__(self, "transient_block", q)
        object.__setattr__(self, "initial", alpha)
        object.__setattr__(self, "_fundamental", solve_fundamental(q))

    @property
    def fundamental_matrix(self) -> np.ndarray:
        """``N = (I - Q)^{-1}``; entry ``(i, j)`` is the expected number
        of visits to transient state ``j`` starting from ``i``."""
        return self._fundamental

    def expected_visits(self) -> np.ndarray:
        """Expected visits to each transient state from ``initial``."""
        return self.initial @ self._fundamental

    def expected_steps_to_absorption(self) -> float:
        """Expected number of transitions before entering a closed class."""
        return float(self.expected_visits().sum())

    def expected_steps_by_state(self) -> np.ndarray:
        """Expected absorption time conditioned on each starting state."""
        return self._fundamental.sum(axis=1)

    def absorption_probability(self, name: str) -> float:
        """Probability of absorption into the named class (Relation (9))."""
        for block_name, block in self.absorbing_blocks:
            if block_name == name:
                arr = np.asarray(block, dtype=float)
                return float(self.initial @ self._fundamental @ arr.sum(axis=1))
        raise KeyError(f"unknown absorbing class {name!r}")

    def absorption_probabilities(self) -> dict[str, float]:
        """Absorption probability for every registered class."""
        return {
            name: self.absorption_probability(name)
            for name, _ in self.absorbing_blocks
        }

    def absorption_distribution(self, name: str) -> np.ndarray:
        """Probability of absorption into each *state* of the named class."""
        for block_name, block in self.absorbing_blocks:
            if block_name == name:
                arr = np.asarray(block, dtype=float)
                return self.initial @ self._fundamental @ arr
        raise KeyError(f"unknown absorbing class {name!r}")

    def time_in_states(self, indicator: np.ndarray) -> float:
        """Expected time spent in the transient states flagged by
        ``indicator`` (a 0/1 vector) before absorption."""
        flags = np.asarray(indicator, dtype=float)
        if flags.shape != (self.transient_block.shape[0],):
            raise MarkovNumericsError(
                f"indicator has shape {flags.shape}, expected "
                f"({self.transient_block.shape[0]},)"
            )
        return float(self.expected_visits() @ flags)
