"""Clusters: core/spare role separation at each overlay vertex.

Section III-A: every vertex of the structured graph hosts a cluster
whose members split into a *core set* maintained at constant size ``C``
(it runs routing and the overlay operations) and a *spare set* of size
``s <= Delta`` absorbing churn.  The cluster must split when its total
size exceeds ``Smax = C + Delta`` and must merge when its spare set
drains empty.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.overlay.errors import MembershipError
from repro.overlay.identifiers import validate_label
from repro.overlay.peer import Peer


@dataclass(eq=False)
class Cluster:
    """One overlay vertex: a labeled core/spare peer group.

    Clusters are *entities*: equality and hashing are by identity
    (``eq=False``), never by field values -- two clusters with the same
    label exist transiently during splits and merges.

    The class enforces structural invariants (no duplicate membership,
    spare capacity, core size) and exposes *role* operations; protocol
    logic (who gets promoted, Rule 2 filtering, ...) lives in
    :mod:`repro.overlay.operations` and the adversary strategies.
    """

    label: str
    core_size: int
    spare_max: int
    core: list[Peer] = field(default_factory=list)
    spare: list[Peer] = field(default_factory=list)

    def __post_init__(self) -> None:
        validate_label(self.label)
        if self.core_size < 1:
            raise MembershipError(
                f"core size must be >= 1, got {self.core_size}"
            )
        if self.spare_max < 2:
            raise MembershipError(
                f"spare capacity must be >= 2, got {self.spare_max}"
            )
        self._assert_disjoint()

    def _assert_disjoint(self) -> None:
        names = [p.name for p in self.core] + [p.name for p in self.spare]
        if len(names) != len(set(names)):
            raise MembershipError(
                f"cluster {self.label!r} holds duplicate members"
            )

    # -- structural views -----------------------------------------------------

    @property
    def spare_size(self) -> int:
        """Current spare size ``s``."""
        return len(self.spare)

    @property
    def total_size(self) -> int:
        """Total population ``|core| + |spare|``."""
        return len(self.core) + len(self.spare)

    @property
    def members(self) -> list[Peer]:
        """Core then spare members (copy)."""
        return list(self.core) + list(self.spare)

    def holds(self, peer: Peer) -> bool:
        """True when ``peer`` is a member of this cluster."""
        return peer in self.core or peer in self.spare

    def role_of(self, peer: Peer) -> str:
        """``"core"`` or ``"spare"``; raises when not a member."""
        if peer in self.core:
            return "core"
        if peer in self.spare:
            return "spare"
        raise MembershipError(
            f"{peer!r} is not a member of cluster {self.label!r}"
        )

    # -- adversary-facing metrics (never consulted by honest protocol code) ----

    @property
    def malicious_core_count(self) -> int:
        """``x`` -- malicious peers in the core set."""
        return sum(1 for p in self.core if p.malicious)

    @property
    def malicious_spare_count(self) -> int:
        """``y`` -- malicious peers in the spare set."""
        return sum(1 for p in self.spare if p.malicious)

    def is_polluted(self, quorum: int) -> bool:
        """Pollution predicate ``x > c`` (Section V)."""
        return self.malicious_core_count > quorum

    def model_state(self) -> tuple[int, int, int]:
        """The Markov-chain coordinates ``(s, x, y)`` of this cluster."""
        return (
            self.spare_size,
            self.malicious_core_count,
            self.malicious_spare_count,
        )

    # -- capacity predicates -----------------------------------------------------

    @property
    def must_split(self) -> bool:
        """Spare capacity exhausted: ``s = Delta`` triggers a split."""
        return self.spare_size >= self.spare_max

    @property
    def must_merge(self) -> bool:
        """Spare set empty: the cluster merges with its closest
        neighbour (Section IV)."""
        return self.spare_size == 0

    # -- membership mutations ------------------------------------------------------

    def add_spare(self, peer: Peer) -> None:
        """Insert a joining peer into the spare set."""
        if self.holds(peer):
            raise MembershipError(
                f"{peer!r} already belongs to cluster {self.label!r}"
            )
        if self.spare_size >= self.spare_max:
            raise MembershipError(
                f"cluster {self.label!r} spare set is full "
                f"({self.spare_size}/{self.spare_max})"
            )
        self.spare.append(peer)

    def add_core(self, peer: Peer) -> None:
        """Insert a peer straight into the core (bootstrap/split only)."""
        if self.holds(peer):
            raise MembershipError(
                f"{peer!r} already belongs to cluster {self.label!r}"
            )
        if len(self.core) >= self.core_size:
            raise MembershipError(
                f"cluster {self.label!r} core set is full "
                f"({len(self.core)}/{self.core_size})"
            )
        self.core.append(peer)

    def remove_spare(self, peer: Peer) -> None:
        """Remove a departing spare member."""
        if peer not in self.spare:
            raise MembershipError(
                f"{peer!r} is not a spare of cluster {self.label!r}"
            )
        self.spare.remove(peer)

    def remove_core(self, peer: Peer) -> None:
        """Remove a departing core member.

        Callers (the leave operation) are responsible for running the
        core maintenance procedure immediately afterwards so the core
        size returns to ``C``.
        """
        if peer not in self.core:
            raise MembershipError(
                f"{peer!r} is not a core member of cluster {self.label!r}"
            )
        self.core.remove(peer)

    def demote_to_spare(self, peer: Peer) -> None:
        """Push a core member into the spare set (maintenance step 1)."""
        self.remove_core(peer)
        self.spare.append(peer)

    def promote_to_core(self, peer: Peer) -> None:
        """Pull a spare member into the core (maintenance step 2)."""
        if peer not in self.spare:
            raise MembershipError(
                f"{peer!r} is not a spare of cluster {self.label!r}"
            )
        if len(self.core) >= self.core_size:
            raise MembershipError(
                f"cluster {self.label!r} core set is full; demote first"
            )
        self.spare.remove(peer)
        self.core.append(peer)

    def check_invariants(self) -> None:
        """Raise :class:`MembershipError` on any structural violation.

        Called by tests and by the simulation engine after every
        operation: core at size ``C`` (unless the whole cluster is
        smaller than ``C`` during bootstrap), spare within capacity,
        disjoint role sets.
        """
        self._assert_disjoint()
        if self.total_size >= self.core_size and len(self.core) != self.core_size:
            raise MembershipError(
                f"cluster {self.label!r} core has {len(self.core)} members, "
                f"expected {self.core_size}"
            )
        if self.spare_size > self.spare_max:
            raise MembershipError(
                f"cluster {self.label!r} spare overflow "
                f"({self.spare_size}/{self.spare_max})"
            )

    def __repr__(self) -> str:
        return (
            f"Cluster(label={self.label!r}, core={len(self.core)}, "
            f"spare={self.spare_size})"
        )
