"""Unit tests for the prefix-tree topology."""

import pytest

from repro.overlay.cluster import Cluster
from repro.overlay.errors import TopologyError
from repro.overlay.topology import PrefixTopology, sibling_label


def bare_cluster(label: str) -> Cluster:
    return Cluster(label=label, core_size=4, spare_max=4)


@pytest.fixture
def three_way() -> PrefixTopology:
    """Covering {0, 10, 11} of a 8-bit space."""
    topology = PrefixTopology(id_bits=8)
    root = bare_cluster("")
    topology.add_cluster(root)
    topology.replace_with_children(
        "", bare_cluster("0"), bare_cluster("1")
    )
    one = topology.lookup(0b1000_0000)
    topology.replace_with_children(
        "1", bare_cluster("10"), bare_cluster("11")
    )
    return topology


class TestSiblingLabel:
    def test_flips_last_bit(self):
        assert sibling_label("010") == "011"
        assert sibling_label("1") == "0"

    def test_root_has_no_sibling(self):
        with pytest.raises(TopologyError):
            sibling_label("")


class TestCoveringInvariant:
    def test_three_way_covering_is_valid(self, three_way):
        three_way.check_covering()
        assert len(three_way) == 3
        assert three_way.regions() == ["0", "10", "11"]

    def test_prefix_collision_detected(self, three_way):
        # A collision cannot arise through the public mutators (each
        # checks the covering), so corrupt the registry directly and
        # verify the checker catches it.
        three_way._region_to_cluster["01"] = bare_cluster("01")
        with pytest.raises(TopologyError, match="prefix"):
            three_way.check_covering()

    def test_incomplete_covering_detected(self):
        topology = PrefixTopology(id_bits=8)
        with pytest.raises(TopologyError, match="measures"):
            topology.add_cluster(bare_cluster("0"))

    def test_duplicate_region_rejected(self, three_way):
        with pytest.raises(TopologyError, match="already owned"):
            three_way.add_cluster(bare_cluster("0"))


class TestLookup:
    def test_every_identifier_resolves(self, three_way):
        for identifier in range(256):
            cluster = three_way.lookup(identifier)
            assert three_way.region_containing(identifier) in (
                "0",
                "10",
                "11",
            )
            assert cluster is three_way.lookup(identifier)

    def test_lookup_respects_prefixes(self, three_way):
        assert three_way.lookup(0b0000_0001).label == "0"
        assert three_way.lookup(0b1000_0001).label == "10"
        assert three_way.lookup(0b1100_0001).label == "11"


class TestMutations:
    def test_split_requires_matching_children(self, three_way):
        with pytest.raises(TopologyError, match="partition"):
            three_way.replace_with_children(
                "0", bare_cluster("10"), bare_cluster("11")
            )

    def test_fold_siblings(self, three_way):
        merged = bare_cluster("1")
        three_way.fold_siblings(merged)
        assert three_way.regions() == ["0", "1"]
        assert three_way.lookup(0b1100_0000) is merged

    def test_fold_requires_both_children(self, three_way):
        with pytest.raises(TopologyError, match="not live"):
            three_way.fold_siblings(bare_cluster("0"))

    def test_transfer_region_creates_multi_region_owner(self, three_way):
        target = three_way.lookup(0b1000_0000)  # the "10" cluster
        three_way.transfer_region("11", target)
        assert sorted(three_way.regions_of(target)) == ["10", "11"]
        assert three_way.lookup(0b1100_0000) is target
        assert len(three_way) == 2

    def test_transfer_to_foreign_cluster_rejected(self, three_way):
        with pytest.raises(TopologyError, match="not a registered"):
            three_way.transfer_region("11", bare_cluster("11"))

    def test_remove_unknown_region(self, three_way):
        with pytest.raises(TopologyError, match="not registered"):
            three_way.remove_region("0101")


class TestNeighbourhood:
    def test_dimension_neighbors(self, three_way):
        zero = three_way.lookup(0)
        ten = three_way.lookup(0b1000_0000)
        eleven = three_way.lookup(0b1100_0000)
        assert three_way.dimension_neighbor(zero, 0) in (ten, eleven)
        assert three_way.dimension_neighbor(ten, 0) is zero
        assert three_way.dimension_neighbor(ten, 1) is eleven

    def test_neighbors_deduplicated(self, three_way):
        ten = three_way.lookup(0b1000_0000)
        neighbors = three_way.neighbors(ten)
        assert len(neighbors) == 2

    def test_bit_index_bounds(self, three_way):
        zero = three_way.lookup(0)
        with pytest.raises(TopologyError, match="bit index"):
            three_way.dimension_neighbor(zero, 5)

    def test_closest_other_cluster(self, three_way):
        ten = three_way.lookup(0b1000_0000)
        eleven = three_way.lookup(0b1100_0000)
        assert three_way.closest_other_cluster(ten) is eleven

    def test_closest_requires_another_cluster(self):
        topology = PrefixTopology(id_bits=8)
        root = bare_cluster("")
        topology.add_cluster(root)
        with pytest.raises(TopologyError, match="no neighbour"):
            topology.closest_other_cluster(root)
