"""Unit tests for the single-cluster Monte-Carlo simulator."""

import numpy as np
import pytest

from repro.core.parameters import ModelParameters
from repro.simulation.cluster_sim import (
    POLLUTED_MERGE,
    SAFE_MERGE,
    SAFE_SPLIT,
    ClusterSimulator,
    SimulationBudgetError,
    monte_carlo_summary,
)


class TestTrajectories:
    def test_absorption_classes(self, rng):
        simulator = ClusterSimulator(
            ModelParameters(mu=0.2, d=0.8, k=1), rng
        )
        for _ in range(50):
            trajectory = simulator.run("delta")
            assert trajectory.absorbed_in in (
                SAFE_MERGE,
                SAFE_SPLIT,
                POLLUTED_MERGE,
            )
            assert trajectory.steps == (
                trajectory.time_safe + trajectory.time_polluted
            )

    def test_mu_zero_never_pollutes(self, rng):
        simulator = ClusterSimulator(ModelParameters(mu=0.0, d=0.0), rng)
        for _ in range(50):
            trajectory = simulator.run("delta")
            assert trajectory.time_polluted == 0
            assert not trajectory.ended_polluted
            assert trajectory.polluted_sojourns == ()

    def test_sojourns_partition_the_time(self, rng):
        simulator = ClusterSimulator(
            ModelParameters(mu=0.3, d=0.9, k=1), rng
        )
        for _ in range(30):
            trajectory = simulator.run("delta", max_steps=200_000)
            assert sum(trajectory.safe_sojourns) == trajectory.time_safe
            assert sum(trajectory.polluted_sojourns) == trajectory.time_polluted

    def test_point_initial_state(self, rng):
        simulator = ClusterSimulator(ModelParameters(mu=0.1, d=0.5), rng)
        trajectory = simulator.run((1, 0, 0), max_steps=100_000)
        assert trajectory.steps >= 1

    def test_beta_initial_state(self, rng):
        simulator = ClusterSimulator(
            ModelParameters(mu=0.3, d=0.5, k=1), rng
        )
        outcomes = [simulator.run("beta", max_steps=100_000) for _ in range(40)]
        # Contaminated starts occasionally begin polluted.
        assert any(t.polluted_sojourns for t in outcomes)

    def test_unknown_initial_rejected(self, rng):
        simulator = ClusterSimulator(ModelParameters(), rng)
        with pytest.raises(ValueError, match="unknown initial"):
            simulator.run("gamma")

    def test_budget_error_on_pinned_cluster(self, rng):
        # d = 1 with a fully malicious start never absorbs: malicious
        # peers neither expire nor leave and Rule 2 blocks the split.
        simulator = ClusterSimulator(
            ModelParameters(mu=1.0, d=1.0, k=1), rng
        )
        with pytest.raises(SimulationBudgetError):
            simulator.run((6, 7, 6), max_steps=5_000)


class TestSummary:
    def test_summary_fields_consistent(self, rng):
        params = ModelParameters(mu=0.2, d=0.5, k=1)
        summary = monte_carlo_summary(params, rng, runs=300)
        assert summary.runs == 300
        assert summary.p_safe_merge + summary.p_safe_split + summary.p_polluted_merge == pytest.approx(
            1.0
        )
        assert summary.mean_time_safe > 0
        assert summary.sem_time_safe > 0
        record = summary.as_dict()
        assert set(record) == {
            "E(T_S)",
            "E(T_P)",
            "p(safe-merge)",
            "p(safe-split)",
            "p(polluted-merge)",
        }

    def test_runs_validated(self, rng):
        with pytest.raises(ValueError):
            monte_carlo_summary(ModelParameters(), rng, runs=0)

    def test_mu_zero_summary_matches_random_walk(self):
        params = ModelParameters(mu=0.0, d=0.0)
        summary = monte_carlo_summary(
            params, np.random.default_rng(8), runs=3000
        )
        assert summary.mean_time_safe == pytest.approx(12.0, rel=0.08)
        assert summary.p_safe_merge == pytest.approx(4 / 7, abs=0.03)
        assert summary.mean_time_polluted == 0.0
