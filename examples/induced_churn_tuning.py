"""Tune the incarnation lifetime L for a target resilience level.

Operators choose L (how long a certificate incarnation lives).  The
paper's conclusion (ii): an adequate L reduces attack propagation
*without* keeping the system in hyper-activity.  This example inverts
the model: given the adversary strength ``mu`` and a pollution budget,
find the largest ``d`` (i.e. the *longest* lifetime = least induced
churn) that still meets the budget.

Run:  python examples/induced_churn_tuning.py
"""

from repro import ClusterModel, ModelParameters
from repro.analysis.tables import render_table
from repro.core.calibration import expected_sojourn_at_position, lifetime_from_d


def polluted_merge_probability(mu: float, d: float) -> float:
    model = ClusterModel(
        ModelParameters(core_size=7, spare_max=7, k=1, mu=mu, d=d)
    )
    return model.absorption_probabilities("delta")["polluted-merge"]


def max_d_for_budget(
    mu: float, budget: float, precision: float = 1e-3
) -> float | None:
    """Largest d whose polluted-merge probability stays within budget.

    The probability is monotone in d (more squatting time helps the
    adversary), so a bisection applies.  Returns ``None`` when even the
    most aggressive churn (d = 0, fresh ids every unit) cannot meet the
    budget -- at that point churn alone is not enough and the operator
    must grow the core (larger C) instead.
    """
    low, high = 0.0, 0.999
    if polluted_merge_probability(mu, low) > budget:
        return None
    if polluted_merge_probability(mu, high) <= budget:
        return high
    while high - low > precision:
        mid = (low + high) / 2.0
        if polluted_merge_probability(mu, mid) <= budget:
            low = mid
        else:
            high = mid
    return low


def main() -> None:
    budget = 0.05  # at most 5 % of dissolving clusters may be polluted
    rows = []
    for mu in (0.10, 0.15, 0.20, 0.25, 0.30):
        d_star = max_d_for_budget(mu, budget)
        if d_star is None:
            rows.append(
                [f"{round(100 * mu)}%", "unreachable", "-", "-", "-"]
            )
            continue
        rows.append(
            [
                f"{round(100 * mu)}%",
                f"{d_star:.3f}",
                f"{lifetime_from_d(d_star):.1f}" if d_star > 0 else "-",
                f"{expected_sojourn_at_position(d_star):.1f}",
                polluted_merge_probability(mu, d_star),
            ]
        )
    print(
        render_table(
            [
                "mu",
                "max d",
                "lifetime L",
                "mean sojourn (units)",
                "p(polluted-merge)",
            ],
            rows,
            title=(
                "Least induced churn meeting a 5 % polluted-merge budget "
                "(C=7, Delta=7, protocol_1, alpha=delta)"
            ),
        )
    )
    print()
    print(
        "Reading: against a weak adversary identifiers may live through\n"
        "many events (d close to 1) -- almost no induced churn is\n"
        "needed.  As mu grows the admissible lifetime collapses; past\n"
        "the point where even d=0 misses the budget, churn alone cannot\n"
        "save the cluster and the core size C must grow.  This is the\n"
        "paper's conclusion (ii): smoothly calibrated pushes suffice;\n"
        "hyper-activity is unnecessary."
    )


if __name__ == "__main__":
    main()
