"""Declarative scenario descriptions.

A :class:`ScenarioSpec` is the single currency of the scenario
subsystem: one frozen, JSON-serializable record naming everything a run
needs -- model parameters, initial distribution, adversary, churn
model, engine, population size, event budget, seeds and replications.
Specs load from JSON or TOML files, and a ``sweep`` table in the same
file turns the spec into a grid: every axis entry is expanded into the
cross product of scenario points (see :class:`SweepSpec`).

Every spec has a *content address* -- the SHA-256 digest of its
canonical JSON form -- used by the
:class:`~repro.scenario.runner.SweepRunner` to cache results under
``results/scenarios/`` so identical points are never recomputed.
"""

from __future__ import annotations

import dataclasses
import hashlib
import itertools
import json
import pathlib
import tomllib
from dataclasses import dataclass, field, replace
from typing import Any, Mapping

from repro.core.parameters import ModelParameters

#: Seed namespace shared with :mod:`repro.analysis.montecarlo`.
DEFAULT_SEED = 20110627

#: ``params`` keys accepted by spec files (ModelParameters fields).
_PARAM_FIELDS = tuple(
    f.name for f in dataclasses.fields(ModelParameters)
)


class SpecError(ValueError):
    """Raised when a scenario document is malformed."""


def _freeze_options(options) -> tuple[tuple[str, Any], ...]:
    """Normalize a mapping (or item tuple) to sorted hashable items."""
    if isinstance(options, Mapping):
        items = options.items()
    else:
        items = tuple(options)
    frozen = tuple(sorted((str(k), v) for k, v in items))
    for _, value in frozen:
        if not isinstance(value, (str, int, float, bool, type(None))):
            raise SpecError(
                f"option values must be JSON scalars, got {value!r}"
            )
    return frozen


@dataclass(frozen=True)
class ScenarioSpec:
    """One fully-specified simulation scenario.

    ==================  ====================================================
    ``name``            free-form label (not part of the content address)
    ``params``          the :class:`~repro.core.parameters.ModelParameters`
    ``initial``         initial distribution: ``"delta"``, ``"beta"`` or an
                        explicit ``(s, x, y)`` triple
    ``adversary``       key into :data:`~repro.scenario.registry.ADVERSARIES`
    ``churn``           key into :data:`~repro.scenario.registry.CHURN_MODELS`
    ``churn_options``   keyword arguments for the churn factory
    ``engine``          key into :data:`~repro.scenario.registry.ENGINES`
    ``n``               population size (clusters or peers, per the engine)
    ``events``          event budget (or time horizon, per the engine)
    ``record_every``    sampling stride for series-producing engines
    ``runs``            independent trajectories for Monte-Carlo engines
    ``replications``    independently seeded repetitions averaged by the
                        engine
    ``seed``            root entropy for the run
    ``seed_index``      spawn-key index assigned by grid expansion
                        (``None`` = use ``seed`` directly)
    ``max_steps``       per-trajectory step budget
    ``options``         engine-specific extras (e.g. ``events_per_unit``)
    ==================  ====================================================
    """

    name: str = "scenario"
    params: ModelParameters = field(default_factory=ModelParameters)
    initial: str | tuple[int, int, int] = "delta"
    adversary: str = "strong"
    churn: str = "bernoulli"
    churn_options: tuple[tuple[str, Any], ...] = ()
    engine: str = "batch"
    n: int = 1
    events: int = 0
    record_every: int = 1
    runs: int = 1
    replications: int = 1
    seed: int = DEFAULT_SEED
    seed_index: int | None = None
    max_steps: int = 1_000_000
    options: tuple[tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "churn_options", _freeze_options(self.churn_options)
        )
        object.__setattr__(self, "options", _freeze_options(self.options))
        if isinstance(self.initial, list):
            object.__setattr__(self, "initial", tuple(self.initial))
        for bound, minimum in (
            ("n", 1),
            ("runs", 1),
            ("replications", 1),
            ("record_every", 1),
            ("events", 0),
            ("max_steps", 1),
        ):
            if getattr(self, bound) < minimum:
                raise SpecError(
                    f"{bound} must be >= {minimum}, got {getattr(self, bound)}"
                )

    # -- dict / file round trip ---------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """Plain-JSON view (inverse of :meth:`from_dict`)."""
        payload: dict[str, Any] = {
            "name": self.name,
            "params": {
                name: getattr(self.params, name) for name in _PARAM_FIELDS
            },
            "initial": (
                list(self.initial)
                if isinstance(self.initial, tuple)
                else self.initial
            ),
            "adversary": self.adversary,
            "churn": self.churn,
            "churn_options": dict(self.churn_options),
            "engine": self.engine,
            "n": self.n,
            "events": self.events,
            "record_every": self.record_every,
            "runs": self.runs,
            "replications": self.replications,
            "seed": self.seed,
            "seed_index": self.seed_index,
            "max_steps": self.max_steps,
            "options": dict(self.options),
        }
        return payload

    @classmethod
    def from_dict(cls, document: Mapping[str, Any]) -> "ScenarioSpec":
        """Build a spec from a parsed JSON/TOML mapping."""
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(document) - known - {"sweep"}
        if unknown:
            raise SpecError(
                f"unknown scenario fields: {', '.join(sorted(unknown))}"
            )
        payload = {
            key: value
            for key, value in document.items()
            if key in known
        }
        params = payload.get("params", {})
        if isinstance(params, Mapping):
            bad = set(params) - set(_PARAM_FIELDS)
            if bad:
                raise SpecError(
                    f"unknown model parameters: {', '.join(sorted(bad))}"
                )
            payload["params"] = ModelParameters(**params)
        return cls(**payload)

    @classmethod
    def from_file(cls, path: str | pathlib.Path) -> "ScenarioSpec":
        """Load a single scenario (``.json`` or ``.toml``); a ``sweep``
        table in the file is an error here -- use :func:`load_scenario`."""
        document = _read_document(path)
        if "sweep" in document:
            raise SpecError(
                f"{path} declares a sweep; load it with load_scenario()"
            )
        return cls.from_dict(document)

    # -- wire format --------------------------------------------------------

    def to_json(self) -> str:
        """Compact JSON text form (inverse of :meth:`from_json`).

        Convenience for shipping a single spec as a string.  The
        distributed protocol embeds :meth:`to_dict` payloads inside
        its JSON frames rather than calling this, but both paths are
        the same serialization, and the property that matters to the
        fabric is proved on this round trip: a spec crossing a JSON
        boundary keeps its content address
        (``from_json(s.to_json()).key() == s.key()``), so a
        coordinator can validate results returned by remote workers
        against the address it assigned.
        """
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        """Rebuild a spec from its JSON wire form."""
        return cls.from_dict(json.loads(text))

    # -- identity -----------------------------------------------------------

    def canonical(self) -> str:
        """Canonical JSON: the hashed cache identity of the scenario.

        The ``name`` label is excluded -- renaming a scenario must not
        invalidate its cached result.
        """
        payload = self.to_dict()
        del payload["name"]
        return json.dumps(payload, sort_keys=True, separators=(",", ":"))

    def key(self) -> str:
        """Content address (SHA-256 of the canonical form)."""
        return hashlib.sha256(self.canonical().encode()).hexdigest()

    def with_overrides(self, **changes) -> "ScenarioSpec":
        """Copy with fields replaced; ``params.<field>`` dotted keys and
        a ``params`` mapping both override model parameters."""
        param_changes = {}
        for key in list(changes):
            if key.startswith("params."):
                param_changes[key.removeprefix("params.")] = changes.pop(key)
        if isinstance(changes.get("params"), Mapping):
            param_changes.update(changes.pop("params"))
        if param_changes:
            changes["params"] = self.params.with_overrides(**param_changes)
        return replace(self, **changes)


@dataclass(frozen=True)
class SweepSpec:
    """A base scenario plus named grid axes.

    ``axes`` maps a spec field (or a dotted ``params.<field>``) to the
    values it sweeps over; :meth:`expand` yields the cross product in
    deterministic (file) order, assigning each point its spawn-key
    ``seed_index`` so every point draws from an independent child
    stream of the base seed (``SeedSequence(seed, spawn_key=(i,))``).
    """

    base: ScenarioSpec
    axes: tuple[tuple[str, tuple[Any, ...]], ...]

    @classmethod
    def from_file(cls, path: str | pathlib.Path) -> "SweepSpec":
        """Load a sweep document (base fields + ``sweep`` table)."""
        document = _read_document(path)
        if not document.get("sweep"):
            raise SpecError(f"{path} declares no sweep axes")
        return load_scenario_document(document)

    def expand(self) -> list[ScenarioSpec]:
        """The grid points, in cross-product order."""
        names = [axis for axis, _ in self.axes]
        points = []
        for index, values in enumerate(
            itertools.product(*(values for _, values in self.axes))
        ):
            overrides = dict(zip(names, values))
            label = ",".join(
                f"{axis.removeprefix('params.')}={value}"
                for axis, value in overrides.items()
            )
            points.append(
                self.base.with_overrides(**overrides).with_overrides(
                    name=f"{self.base.name}[{label}]", seed_index=index
                )
            )
        return points


def load_scenario(
    path: str | pathlib.Path,
) -> ScenarioSpec | SweepSpec:
    """Load a scenario file, returning a sweep when it declares axes."""
    return load_scenario_document(_read_document(path))


def load_scenario_document(
    document: Mapping[str, Any],
) -> ScenarioSpec | SweepSpec:
    """Build a scenario (or sweep) from an already-parsed mapping.

    The document-level twin of :func:`load_scenario`: the CLI reaches
    it through files, the ``/submit`` endpoint of ``repro serve``
    through HTTP request bodies.  A ``sweep`` table turns the document
    into a :class:`SweepSpec`; without one it is a single
    :class:`ScenarioSpec`.
    """
    if not isinstance(document, Mapping):
        raise SpecError(
            f"scenario document must be a mapping, "
            f"got {type(document).__name__}"
        )
    axes = document.get("sweep")
    if axes:
        if not isinstance(axes, Mapping):
            raise SpecError(
                f"'sweep' must map axis names to value lists, got {axes!r}"
            )
        try:
            frozen = tuple(
                (str(axis), tuple(values)) for axis, values in axes.items()
            )
        except TypeError:
            raise SpecError(
                f"sweep axis values must be lists, got {axes!r}"
            ) from None
        for axis, values in frozen:
            if not values:
                raise SpecError(f"sweep axis {axis!r} has no values")
        return SweepSpec(base=ScenarioSpec.from_dict(document), axes=frozen)
    return ScenarioSpec.from_dict(document)


def _read_document(path: str | pathlib.Path) -> dict[str, Any]:
    path = pathlib.Path(path)
    if path.suffix == ".toml":
        with path.open("rb") as handle:
            return tomllib.load(handle)
    if path.suffix == ".json":
        return json.loads(path.read_text())
    raise SpecError(
        f"unsupported scenario file type {path.suffix!r} (json/toml only)"
    )
