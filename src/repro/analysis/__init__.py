"""Experiment harness: one module per paper table/figure plus ablations."""

from repro.analysis.experiments import (
    D_GRID,
    FIGURE5_D_GRID,
    FIGURE5_EVENTS,
    FIGURE5_MU,
    FIGURE5_N_GRID,
    MU_GRID,
    TABLE1_D_GRID,
    TABLE1_MU_GRID,
    TABLE2_D,
    TABLE2_MU_GRID,
    ModelCache,
    SweepPoint,
    base_parameters,
    mu_percent,
    sweep,
)
from repro.analysis.figure3 import (
    Figure3Cell,
    compute_figure3,
    render_figure3,
)
from repro.analysis.figure4 import (
    Figure4Cell,
    compute_figure4,
    render_figure4,
)
from repro.analysis.figure5 import (
    Figure5Curve,
    compute_figure5,
    render_figure5,
)
from repro.analysis.montecarlo import (
    EmpiricalTable2Row,
    empirical_proportion_series,
    empirical_sojourn_columns,
    empirical_table2,
    render_empirical_table2,
)
from repro.analysis.table1 import (
    PAPER_TABLE1,
    Table1Cell,
    compute_table1,
    max_relative_gap,
    render_table1,
)
from repro.analysis.table2 import (
    PAPER_TABLE2,
    Table2Row,
    alternation_is_negligible,
    compute_table2,
    render_table2,
)
from repro.analysis.tables import format_value, render_comparison, render_table

__all__ = [
    "ModelCache",
    "SweepPoint",
    "base_parameters",
    "sweep",
    "mu_percent",
    "MU_GRID",
    "D_GRID",
    "TABLE1_MU_GRID",
    "TABLE1_D_GRID",
    "TABLE2_MU_GRID",
    "TABLE2_D",
    "FIGURE5_N_GRID",
    "FIGURE5_D_GRID",
    "FIGURE5_EVENTS",
    "FIGURE5_MU",
    "Figure3Cell",
    "compute_figure3",
    "render_figure3",
    "Figure4Cell",
    "compute_figure4",
    "render_figure4",
    "Figure5Curve",
    "compute_figure5",
    "render_figure5",
    "EmpiricalTable2Row",
    "empirical_sojourn_columns",
    "empirical_table2",
    "render_empirical_table2",
    "empirical_proportion_series",
    "Table1Cell",
    "compute_table1",
    "render_table1",
    "max_relative_gap",
    "PAPER_TABLE1",
    "Table2Row",
    "compute_table2",
    "render_table2",
    "alternation_is_negligible",
    "PAPER_TABLE2",
    "render_table",
    "render_comparison",
    "format_value",
]
