"""Seeded randomness management for reproducible simulations.

Every stochastic component receives an explicit
``numpy.random.Generator``; this module centralizes seed handling so
that experiment runs are reproducible from a single root seed and
independent replications use provably independent streams
(``SeedSequence.spawn``).
"""

from __future__ import annotations

import numpy as np

#: Root seed used by examples and benchmarks unless overridden.
DEFAULT_SEED = 20110627  # DSN 2011 opening day.


def root_generator(seed: int | None = None) -> np.random.Generator:
    """The root generator for one experiment run."""
    return np.random.default_rng(DEFAULT_SEED if seed is None else seed)


def spawn_generators(
    seed: int | None, count: int
) -> list[np.random.Generator]:
    """``count`` independent generators derived from one root seed."""
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    sequence = np.random.SeedSequence(
        DEFAULT_SEED if seed is None else seed
    )
    return [np.random.default_rng(child) for child in sequence.spawn(count)]


def replication_seeds(seed: int | None, count: int) -> list[int]:
    """Plain integer seeds for ``count`` replications (logged by the
    harness so any single replication can be re-run in isolation)."""
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    sequence = np.random.SeedSequence(
        DEFAULT_SEED if seed is None else seed
    )
    return [int(s.generate_state(1)[0]) for s in sequence.spawn(count)]
