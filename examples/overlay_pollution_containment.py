"""Overlay-wide fault containment (the paper's Section VIII story).

Shows that pollution does not propagate: even with the adversary holding
25 % of the universe, the expected proportion of polluted clusters in a
large overlay stays around 2 % -- first through Theorem 2's closed form,
then through an independent competing-clusters simulation.

Run:  python examples/overlay_pollution_containment.py
"""

import numpy as np

from repro import ModelParameters, OverlayModel
from repro.analysis.tables import render_table
from repro.core.calibration import lifetime_from_d
from repro.simulation import CompetingClustersSimulation, SeriesAccumulator

PARAMS = ModelParameters(core_size=7, spare_max=7, k=1, mu=0.25, d=0.90)
N_CLUSTERS = 500
N_EVENTS = 50_000
RECORD = 5_000


def analytic_series():
    overlay = OverlayModel(PARAMS, N_CLUSTERS)
    return overlay.proportion_series("delta", N_EVENTS, record_every=RECORD)


def empirical_series(replications: int = 5):
    safe = SeriesAccumulator()
    polluted = SeriesAccumulator()
    for replication in range(replications):
        rng = np.random.default_rng(7_000 + replication)
        simulation = CompetingClustersSimulation(PARAMS, N_CLUSTERS, rng)
        run = simulation.run(N_EVENTS, record_every=RECORD)
        safe.add(run.safe_fraction)
        polluted.add(run.polluted_fraction)
    return safe.mean(), polluted.mean()


def main() -> None:
    print(
        f"Overlay: n={N_CLUSTERS} clusters, {PARAMS.describe()}, "
        f"L={lifetime_from_d(PARAMS.d):.2f}"
    )
    print()
    series = analytic_series()
    simulated_safe, simulated_polluted = empirical_series()
    rows = []
    for i, m in enumerate(series.events):
        rows.append(
            [
                int(m),
                series.safe_fraction[i],
                simulated_safe[i],
                series.polluted_fraction[i],
                simulated_polluted[i],
            ]
        )
    print(
        render_table(
            [
                "events m",
                "safe (Thm 2)",
                "safe (sim)",
                "polluted (Thm 2)",
                "polluted (sim)",
            ],
            rows,
            title="Expected proportions of safe and polluted clusters",
        )
    )
    print()
    print(
        f"peak polluted proportion (Thm 2):     "
        f"{series.peak_polluted_fraction:.4f}"
    )
    print(
        f"peak polluted proportion (simulated): "
        f"{float(simulated_polluted.max()):.4f}"
    )
    print()
    print(
        "Fault containment: even with mu=25 % the adversary never holds\n"
        "more than ~2 % of clusters in expectation -- polluted clusters\n"
        "dissolve (merge) before contaminating their neighbours, which\n"
        "is why the paper's beta-style contaminated restarts are rare."
    )


if __name__ == "__main__":
    main()
