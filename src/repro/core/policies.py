"""Count-level adversary policies (shared by every simulation tier).

A :class:`CountAdversaryPolicy` is the count-state rendition of an
agent-tier :class:`~repro.adversary.base.AdversaryStrategy`: four
switches that fully determine how the adversary reacts to join and
leave events when a cluster is reduced to its ``(s, x, y)`` counts.
The record lives in :mod:`repro.core` because *three* layers consume
it:

* the scalar member-list oracle
  (:class:`~repro.simulation.cluster_sim.ClusterSimulator`) plays the
  switches event by event on explicit member lists;
* the transition derivation
  (:func:`~repro.core.transitions.policy_transition_distribution`)
  folds the same switches into a one-step law, so variant chains and
  batch transition rows can be assembled for *any* registered
  adversary;
* the vectorized batch engine samples those variant rows directly.

Keeping one frozen, hashable record shared by all three guarantees the
oracle and the derived law can never drift apart silently -- the
equivalence tests compare them head to head.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CountAdversaryPolicy:
    """Count-level rendition of an adversary strategy.

    The scalar simulator plays the adversary through four switches that
    mirror the agent-tier :class:`~repro.adversary.base.AdversaryStrategy`
    hooks on anonymous member lists:

    * ``rule2`` -- filter joins in polluted clusters (Rule 2);
    * ``suppress_leaves`` -- malicious members resist natural churn and
      depart only under Property 1;
    * ``biased_replacement`` -- promote malicious spares while the
      quorum holds;
    * ``rule1`` -- voluntary core leaves: ``"gated"`` (Relation (2)),
      ``"always"`` (whenever a malicious spare exists) or ``"never"``.

    The default :data:`STRONG_POLICY` reproduces the paper's adversary
    with the exact event semantics (and RNG draw order) the simulator
    always had.
    """

    name: str
    rule2: bool = True
    suppress_leaves: bool = True
    biased_replacement: bool = True
    rule1: str = "gated"

    def __post_init__(self) -> None:
        if self.rule1 not in ("gated", "always", "never"):
            raise ValueError(
                f"rule1 must be gated/always/never, got {self.rule1!r}"
            )


#: The paper's Section-V adversary (Rules 1+2, biased maintenance).
STRONG_POLICY = CountAdversaryPolicy("strong")

#: Malicious peers exist but follow the protocol.
PASSIVE_POLICY = CountAdversaryPolicy(
    "passive",
    rule2=False,
    suppress_leaves=False,
    biased_replacement=False,
    rule1="never",
)

#: Rule 1 without Relation (2)'s probability gate (ablation).
GREEDY_LEAVE_POLICY = CountAdversaryPolicy("greedy-leave", rule1="always")

#: Count-level policies by adversary registry name.
COUNT_POLICIES: dict[str, CountAdversaryPolicy] = {
    "strong": STRONG_POLICY,
    "passive": PASSIVE_POLICY,
    "greedy-leave": GREEDY_LEAVE_POLICY,
    "none": PASSIVE_POLICY,
}


def resolve_count_policy(
    adversary: CountAdversaryPolicy | str | None,
) -> CountAdversaryPolicy:
    """Normalize an adversary selector to a policy record.

    ``None`` selects the paper's strong adversary; a string is looked
    up in :data:`COUNT_POLICIES`; a policy instance passes through.
    """
    if adversary is None:
        return STRONG_POLICY
    if isinstance(adversary, str):
        try:
            return COUNT_POLICIES[adversary]
        except KeyError:
            known = ", ".join(sorted(COUNT_POLICIES))
            raise ValueError(
                f"unknown count-level adversary {adversary!r}; "
                f"known: {known}"
            ) from None
    return adversary
