"""Unit tests for the figure modules (reduced grids for speed)."""

import numpy as np
import pytest

from repro.analysis import figure3, figure4, figure5
from repro.analysis.experiments import ModelCache


@pytest.fixture(scope="module")
def cache():
    return ModelCache()


class TestFigure3:
    @pytest.fixture(scope="class")
    def cells(self, cache):
        return figure3.compute_figure3(
            k_values=(1, 7),
            initials=("delta", "beta"),
            mu_grid=(0.0, 0.15, 0.30),
            d_grid=(0.0, 0.90),
            cache=cache,
        )

    def test_cell_count(self, cells):
        assert len(cells) == 2 * 2 * 3 * 2

    def test_shape_checks_pass_on_reduced_grid(self, cells):
        checks = figure3.shape_checks(cells)
        assert all(checks.values()), checks

    def test_render_contains_panels(self, cells):
        text = figure3.render_figure3(cells)
        assert "protocol_1" in text
        assert "protocol_7" in text
        assert "alpha=beta" in text

    def test_values_positive(self, cells):
        assert all(c.expected_safe > 0 for c in cells)
        assert all(c.expected_polluted >= 0 for c in cells)


class TestFigure4:
    @pytest.fixture(scope="class")
    def cells(self, cache):
        return figure4.compute_figure4(
            initials=("delta", "beta"),
            mu_grid=(0.0, 0.15, 0.30),
            d_grid=(0.0, 0.90),
            cache=cache,
        )

    def test_shape_checks_pass(self, cells):
        checks = figure4.shape_checks(cells)
        assert all(checks.values()), checks

    def test_probability_rows_normalize(self, cells):
        for cell in cells:
            total = cell.p_safe_merge + cell.p_safe_split + cell.p_polluted_merge
            assert total == pytest.approx(1.0)

    def test_render_mentions_probabilities(self, cells):
        text = figure4.render_figure4(cells)
        assert "p(polluted-merge)" in text


class TestFigure5:
    @pytest.fixture(scope="class")
    def curves(self, cache):
        return figure5.compute_figure5(
            mu=0.25,
            n_grid=(50,),
            d_grid=(0.30, 0.90),
            n_events=5000,
            record_every=250,
            cache=cache,
        )

    def test_curve_shapes(self, curves):
        assert len(curves) == 2
        for curve in curves:
            assert curve.series.events[-1] == 5000
            assert curve.series.safe_fraction[0] == pytest.approx(1.0)

    def test_lifetime_labels_match_paper(self, curves):
        by_d = {curve.d: curve for curve in curves}
        assert by_d[0.30].lifetime == pytest.approx(6.58, abs=0.01)
        assert by_d[0.90].lifetime == pytest.approx(46.05, abs=0.01)

    def test_polluted_fraction_small(self, curves):
        for curve in curves:
            assert curve.series.peak_polluted_fraction < figure5.PAPER_POLLUTED_CEILING

    def test_render_contains_peaks(self, curves):
        text = figure5.render_figure5(curves)
        assert "peak" in text
        assert "n=50" in text

    def test_shape_checks_on_full_horizon(self, cache):
        curves = figure5.compute_figure5(
            mu=0.25,
            n_grid=(50,),
            d_grid=(0.30, 0.90),
            n_events=20_000,
            record_every=1000,
            cache=cache,
        )
        checks = figure5.shape_checks(curves)
        assert all(checks.values()), checks
