"""Distributed sweep fabric: coordinator/worker execution + serving.

The single-host :class:`~repro.scenario.runner.SweepRunner` fans a grid
over local processes; this package fans it over *hosts*:

* :mod:`~repro.distributed.protocol` -- length-prefixed JSON frames
  (CLAIM / ASSIGN / RESULT / HEARTBEAT / SHUTDOWN) over TCP;
* :mod:`~repro.distributed.ledger` -- a durable, replayable job queue
  keyed by each point's sha256 content address: one JSONL file, or a
  per-sweep sharded directory with snapshot + compaction;
* :mod:`~repro.distributed.coordinator` -- expands a sweep, hands
  points to any number of workers, folds results into the shared
  content-addressed store, and resumes after a crash from the ledger;
* :mod:`~repro.distributed.worker` -- claims points and executes them
  through the registered ``ENGINES`` backends (byte-identical to the
  in-process runner: seeds come from the spec, not the host);
* :mod:`~repro.distributed.service` -- a stdlib-only HTTP service over
  the store and ledger (results, reports, progress, submit, cancel)
  for many concurrent clients;
* :mod:`~repro.distributed.faults` -- deterministic, seeded fault
  injection at named points of all of the above (the robustness
  suites script exact failure schedules with it).

CLI entry points: ``repro sweep-coordinator``, ``repro worker``,
``repro serve``.

Exports resolve lazily (PEP 562): the store layer imports the
dependency-free :mod:`faults` module from this package, so importing
the package must not eagerly pull in the coordinator (which imports
the store right back).
"""

from typing import Any

_EXPORTS = {
    "FaultPlan": "repro.distributed.faults",
    "FaultRule": "repro.distributed.faults",
    "LedgerState": "repro.distributed.ledger",
    "MAX_FRAME_BYTES": "repro.distributed.protocol",
    "ProtocolError": "repro.distributed.protocol",
    "ResultsService": "repro.distributed.service",
    "ShardedLedger": "repro.distributed.ledger",
    "SweepCoordinator": "repro.distributed.coordinator",
    "SweepLedger": "repro.distributed.ledger",
    "decode_frame": "repro.distributed.protocol",
    "encode_frame": "repro.distributed.protocol",
    "open_ledger": "repro.distributed.ledger",
    "read_frame": "repro.distributed.protocol",
    "run_worker": "repro.distributed.worker",
    "worker_loop": "repro.distributed.worker",
    "write_frame": "repro.distributed.protocol",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str) -> Any:
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        )
    import importlib

    return getattr(importlib.import_module(module_name), name)


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_EXPORTS))
