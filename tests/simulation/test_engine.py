"""Unit tests for the discrete-event engine."""

import pytest

from repro.simulation.engine import DiscreteEventEngine, SimulationError


class TestScheduling:
    def test_events_fire_in_time_order(self):
        engine = DiscreteEventEngine()
        fired = []
        engine.schedule_at(3.0, lambda: fired.append("c"))
        engine.schedule_at(1.0, lambda: fired.append("a"))
        engine.schedule_at(2.0, lambda: fired.append("b"))
        engine.run_all()
        assert fired == ["a", "b", "c"]

    def test_ties_break_by_insertion_order(self):
        engine = DiscreteEventEngine()
        fired = []
        for tag in ("first", "second", "third"):
            engine.schedule_at(5.0, lambda t=tag: fired.append(t))
        engine.run_all()
        assert fired == ["first", "second", "third"]

    def test_clock_advances_to_event_time(self):
        engine = DiscreteEventEngine()
        seen = []
        engine.schedule_at(4.5, lambda: seen.append(engine.now))
        engine.run_all()
        assert seen == [4.5]
        assert engine.now == 4.5

    def test_schedule_after_relative(self):
        engine = DiscreteEventEngine()
        engine.schedule_at(2.0, lambda: None)
        engine.step()
        handle = engine.schedule_after(3.0, lambda: None)
        assert handle.time == 5.0

    def test_past_scheduling_rejected(self):
        engine = DiscreteEventEngine()
        engine.schedule_at(2.0, lambda: None)
        engine.step()
        with pytest.raises(SimulationError, match="already at"):
            engine.schedule_at(1.0, lambda: None)

    def test_negative_delay_rejected(self):
        engine = DiscreteEventEngine()
        with pytest.raises(SimulationError, match=">= 0"):
            engine.schedule_after(-1.0, lambda: None)

    def test_cancellation(self):
        engine = DiscreteEventEngine()
        fired = []
        handle = engine.schedule_at(1.0, lambda: fired.append("x"))
        handle.cancel()
        engine.run_all()
        assert fired == []

    def test_handle_exposes_name(self):
        engine = DiscreteEventEngine()
        handle = engine.schedule_at(1.0, lambda: None, name="probe")
        assert handle.name == "probe"


class TestRunControls:
    def test_run_until_stops_at_horizon(self):
        engine = DiscreteEventEngine()
        fired = []
        for t in (1.0, 2.0, 3.0):
            engine.schedule_at(t, lambda t=t: fired.append(t))
        executed = engine.run_until(2.0)
        assert executed == 2
        assert fired == [1.0, 2.0]
        assert engine.now == 2.0
        assert engine.pending == 1

    def test_run_until_max_events(self):
        engine = DiscreteEventEngine()
        for t in range(10):
            engine.schedule_at(float(t), lambda: None)
        executed = engine.run_until(100.0, max_events=4)
        assert executed == 4

    def test_run_all_budget_guards_loops(self):
        engine = DiscreteEventEngine()

        def reschedule():
            engine.schedule_after(1.0, reschedule)

        engine.schedule_after(1.0, reschedule)
        with pytest.raises(SimulationError, match="budget"):
            engine.run_all(max_events=100)

    def test_events_fired_counter(self):
        engine = DiscreteEventEngine()
        for t in (1.0, 2.0):
            engine.schedule_at(t, lambda: None)
        engine.run_all()
        assert engine.events_fired == 2


class TestPeriodic:
    def test_periodic_fires_on_schedule(self):
        engine = DiscreteEventEngine()
        ticks = []
        engine.schedule_periodic(2.0, lambda: ticks.append(engine.now))
        engine.run_until(7.0)
        assert ticks == [2.0, 4.0, 6.0]

    def test_periodic_with_explicit_start(self):
        engine = DiscreteEventEngine()
        ticks = []
        engine.schedule_periodic(
            2.0, lambda: ticks.append(engine.now), first_at=0.0
        )
        engine.run_until(4.0)
        assert ticks == [0.0, 2.0, 4.0]

    def test_stopper_halts_recurrence(self):
        engine = DiscreteEventEngine()
        ticks = []
        stop = engine.schedule_periodic(1.0, lambda: ticks.append(engine.now))
        engine.run_until(3.0)
        stop()
        engine.run_until(10.0)
        assert ticks == [1.0, 2.0, 3.0]

    def test_period_must_be_positive(self):
        engine = DiscreteEventEngine()
        with pytest.raises(SimulationError, match="positive"):
            engine.schedule_periodic(0.0, lambda: None)
