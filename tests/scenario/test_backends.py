"""Unit tests for the simulation backends behind the engine registry."""

import numpy as np
import pytest

from repro.core.parameters import ModelParameters
from repro.scenario import ENGINES, ScenarioSpec, SpecError
from repro.scenario.runner import execute_spec

ATTACK = ModelParameters(core_size=7, spare_max=7, k=1, mu=0.2, d=0.9)


def spec(**fields) -> ScenarioSpec:
    defaults = {"name": "t", "params": ATTACK, "seed": 3}
    defaults.update(fields)
    return ScenarioSpec(**defaults)


class TestAnalyticBackend:
    def test_times_match_model(self, attack_model):
        result = execute_spec(spec(engine="analytic"))
        assert result.metrics["E(T_S)"] == attack_model.with_overrides(
            d=0.9
        ).expected_time_safe("delta")

    def test_sojourn_family(self):
        result = execute_spec(
            spec(engine="analytic", options={"metrics": "sojourns"})
        )
        assert {"E(T_S,1)", "E(T_S,2)", "E(T_P,1)", "E(T_P,2)"} <= set(
            result.metrics
        )

    def test_absorption_family_sums_to_one(self):
        result = execute_spec(
            spec(engine="analytic", options={"metrics": "absorption"})
        )
        total = (
            result.metrics["p(safe-merge)"]
            + result.metrics["p(safe-split)"]
            + result.metrics["p(polluted-merge)"]
        )
        assert total == pytest.approx(1.0)

    def test_unknown_family_rejected(self):
        with pytest.raises(SpecError, match="metrics family"):
            execute_spec(
                spec(engine="analytic", options={"metrics": "bogus"})
            )

    def test_rejects_non_strong_adversary(self):
        with pytest.raises(SpecError, match="strong adversary"):
            execute_spec(spec(engine="analytic", adversary="passive"))

    def test_rejects_non_bernoulli_churn(self):
        with pytest.raises(SpecError, match="churn"):
            execute_spec(spec(engine="analytic", churn="poisson"))


class TestBatchBackend:
    def test_matches_direct_summary(self):
        from repro.simulation.batch import batch_monte_carlo_summary

        result = execute_spec(spec(engine="batch", runs=2000, seed=17))
        direct = batch_monte_carlo_summary(
            ATTACK, np.random.default_rng(17), runs=2000
        )
        assert result.metrics["E(T_S)"] == direct.mean_time_safe
        assert result.metrics["E(T_P)"] == direct.mean_time_polluted
        assert (
            result.metrics["p(polluted-merge)"] == direct.p_polluted_merge
        )


class TestScalarBackend:
    def test_adversary_axis_changes_outcome(self):
        strong = execute_spec(spec(engine="scalar", runs=800))
        passive = execute_spec(
            spec(engine="scalar", runs=800, adversary="passive")
        )
        assert (
            passive.metrics["E(T_P)"] < strong.metrics["E(T_P)"]
        ), "a protocol-following adversary must pollute less"

    def test_churn_axis_accepted(self):
        result = execute_spec(
            spec(
                engine="scalar",
                runs=200,
                churn="pareto-sessions",
                churn_options={"horizon": 100000.0},
            )
        )
        assert result.metrics["runs"] == 200.0

    def test_unknown_adversary_rejected(self):
        with pytest.raises(SpecError, match="count-level"):
            execute_spec(spec(engine="scalar", adversary="martian"))

    def test_misspelled_churn_option_rejected(self):
        with pytest.raises(SpecError, match="mean_sesion"):
            execute_spec(
                spec(
                    engine="scalar",
                    runs=10,
                    churn="exponential-sessions",
                    churn_options={"mean_sesion": 2.0},
                )
            )

    def test_foreign_but_valid_churn_option_dropped(self):
        # 'horizon' belongs to the session generators; a bernoulli
        # point in the same sweep simply ignores it.
        result = execute_spec(
            spec(
                engine="scalar",
                runs=50,
                churn="bernoulli",
                churn_options={"horizon": 1000.0},
            )
        )
        assert result.metrics["runs"] == 50.0


class TestCompetingBackends:
    def test_batch_matches_montecarlo_helper(self):
        from repro.analysis.montecarlo import empirical_proportion_series

        result = execute_spec(
            spec(
                engine="competing-batch",
                n=300,
                events=1500,
                record_every=500,
                replications=3,
                seed=5,
            )
        )
        series = empirical_proportion_series(
            ATTACK, 300, 1500, record_every=500, replications=3, seed=5
        )
        assert result.series["events"] == series.events.tolist()
        assert result.series["safe_fraction"] == series.safe_fraction.tolist()

    def test_scalar_engine_runs(self):
        result = execute_spec(
            spec(
                engine="competing-scalar",
                n=50,
                events=400,
                record_every=200,
            )
        )
        assert len(result.series["events"]) == 3
        assert result.series["safe_fraction"][0] == 1.0


class TestAgentBackend:
    def test_deterministic_per_spec(self):
        point = spec(
            engine="agent",
            n=40,
            events=60,
            adversary="strong",
            options={"sample_every": 20.0},
        )
        first = execute_spec(point)
        second = execute_spec(point)
        assert first.metrics == second.metrics
        assert first.series == second.series

    def test_adversary_and_churn_axes(self):
        result = execute_spec(
            spec(
                engine="agent",
                n=40,
                events=60,
                adversary="passive",
                churn="poisson",
            )
        )
        assert result.metrics.get("op:leave-suppressed", 0.0) == 0.0
        assert result.meta["churn"] == "poisson"


class TestEngineRegistryDispatch:
    def test_unknown_engine(self):
        from repro.scenario.registry import RegistryError

        with pytest.raises(RegistryError, match="simulation backend"):
            execute_spec(spec(engine="warp-drive"))

    def test_all_engines_expose_run(self):
        import repro.scenario.backends  # noqa: F401

        for name in ENGINES.names():
            assert callable(ENGINES.get(name).run)


class TestBatchBackendAxes:
    """The batch tier is the universal fast path: every registered
    adversary and churn model runs on it, never a silent fallback."""

    def test_adversary_axis_changes_outcome(self):
        strong = execute_spec(spec(engine="batch", runs=4000))
        passive = execute_spec(
            spec(engine="batch", runs=4000, adversary="passive")
        )
        assert (
            passive.metrics["p(polluted-merge)"]
            < strong.metrics["p(polluted-merge)"]
        )

    def test_poisson_default_rates_equal_bernoulli(self):
        """Event-indexed, the default Poisson superposition is the
        Bernoulli stream: identical engine path, identical result."""
        bernoulli = execute_spec(spec(engine="batch", runs=1500, seed=5))
        poisson = execute_spec(
            spec(engine="batch", runs=1500, seed=5, churn="poisson")
        )
        assert bernoulli.metrics == poisson.metrics

    def test_session_churn_accepted(self):
        result = execute_spec(
            spec(
                engine="batch",
                runs=800,
                churn="pareto-sessions",
                churn_options={"horizon": 100000.0},
            )
        )
        assert result.metrics["runs"] == 800.0

    def test_default_point_is_byte_identical_to_legacy(self):
        from repro.simulation.batch import batch_monte_carlo_summary

        result = execute_spec(spec(engine="batch", runs=1200, seed=17))
        direct = batch_monte_carlo_summary(
            ATTACK, np.random.default_rng(17), runs=1200
        )
        assert result.metrics["E(T_S)"] == direct.mean_time_safe

    def test_unknown_adversary_rejected(self):
        with pytest.raises(SpecError, match="count-level"):
            execute_spec(spec(engine="batch", adversary="martian"))

    def test_bad_mode_rejected(self):
        with pytest.raises(SpecError, match="mode"):
            execute_spec(
                spec(engine="batch", runs=10, options={"mode": "warp"})
            )

    def test_skip_mode_on_session_churn_rejected(self):
        with pytest.raises(SpecError, match="skip"):
            execute_spec(
                spec(
                    engine="batch",
                    runs=10,
                    churn="exponential-sessions",
                    churn_options={"horizon": 5000.0},
                    options={"mode": "skip"},
                )
            )

    def test_chunk_size_option_streams(self):
        chunked = execute_spec(
            spec(
                engine="batch",
                runs=3000,
                seed=8,
                adversary="passive",
                options={"chunk_size": 1000},
            )
        )
        assert chunked.metrics["runs"] == 3000.0


class TestCompetingBackendAxes:
    def test_adversary_axis_accepted(self):
        result = execute_spec(
            spec(
                engine="competing-batch",
                n=100,
                events=500,
                record_every=250,
                adversary="passive",
            )
        )
        assert result.metrics["final_safe_fraction"] >= 0.0

    def test_event_batching_option(self):
        result = execute_spec(
            spec(
                engine="competing-batch",
                n=100,
                events=500,
                record_every=250,
                options={"event_batching": True},
            )
        )
        assert len(result.series["events"]) == 3

    def test_session_churn_rejected_loudly(self):
        with pytest.raises(SpecError, match="session"):
            execute_spec(
                spec(
                    engine="competing-batch",
                    n=20,
                    events=100,
                    churn="pareto-sessions",
                )
            )

    def test_scalar_engine_honours_adversary(self):
        result = execute_spec(
            spec(
                engine="competing-scalar",
                n=30,
                events=200,
                record_every=100,
                adversary="greedy-leave",
            )
        )
        assert result.meta["adversary"] == "greedy-leave"

    def test_event_batching_on_scalar_engine_rejected(self):
        with pytest.raises(SpecError, match="event-axis"):
            execute_spec(
                spec(
                    engine="competing-scalar",
                    n=20,
                    events=100,
                    options={"event_batching": True},
                )
            )

    def test_unknown_engine_option_rejected(self):
        with pytest.raises(SpecError, match="chunksize"):
            execute_spec(
                spec(engine="batch", runs=10, options={"chunksize": 100})
            )

    def test_foreign_but_valid_engine_option_dropped(self):
        # 'sample_every' belongs to the agent engine; a batch point in
        # the same sweep simply ignores it.
        result = execute_spec(
            spec(engine="batch", runs=50, options={"sample_every": 5.0})
        )
        assert result.metrics["runs"] == 50.0
