"""Command-line interface: ``python -m repro <experiment>``.

Regenerates any table or figure of the paper on the console and,
optionally, as CSV artifacts for external plotting::

    python -m repro table1
    python -m repro figure5 --out results/
    python -m repro all

The ``scenario`` subcommand drives the declarative scenario subsystem::

    python -m repro scenario list
    python -m repro scenario run examples/scenarios/strong_batch.json
    python -m repro scenario sweep examples/scenarios/cross_product.toml \
        --workers 4 --stream results/grid.jsonl
    python -m repro scenario report --name cross_product

The distributed fabric spans hosts: a coordinator owns the durable job
queue, any number of workers (anywhere) execute points, and an HTTP
service reads the shared result store::

    python -m repro sweep-coordinator examples/scenarios/cross_product.toml \
        --port 7641
    python -m repro worker --host coordinator.example --port 7641   # xN
    python -m repro serve --port 8080

With ``--watch`` the coordinator becomes a resident service fed by
``POST /submit`` on ``repro serve`` (both tailing the same ledger)::

    python -m repro sweep-coordinator --watch --port 7641
    python -m repro serve --port 8080
    curl -X POST -H 'Content-Type: application/toml' \
        --data-binary @examples/scenarios/cross_product.toml \
        http://localhost:8080/submit

``repro trace <sweep-id>`` joins the ledger with the span telemetry
(``$REPRO_TELEMETRY``) into a per-point timeline of a submitted sweep.
"""

from __future__ import annotations

import argparse
import pathlib
import sys

from repro.analysis import ablations
from repro.analysis import figure3 as fig3
from repro.analysis import figure4 as fig4
from repro.analysis import figure5 as fig5
from repro.analysis import table1 as tab1
from repro.analysis import table2 as tab2
from repro.analysis.io import write_csv
from repro.analysis.tables import render_table

EXPERIMENTS = ("figure3", "figure4", "figure5", "table1", "table2", "ablations")

#: ``report`` reruns everything and writes one markdown document; it is
#: not part of ``all`` to keep that invocation non-redundant.
EXTRA_EXPERIMENTS = ("report",)


def _run_figure3(arguments) -> str:
    out = arguments.out
    cells = fig3.compute_figure3()
    checks = fig3.shape_checks(cells)
    if out is not None:
        write_csv(
            out / "figure3.csv",
            ["k", "initial", "d", "mu", "E(T_S)", "E(T_P)"],
            [
                [c.k, c.initial, c.d, c.mu, c.expected_safe, c.expected_polluted]
                for c in cells
            ],
        )
    return fig3.render_figure3(cells) + "\n\nshape checks: " + str(checks)


def _run_figure4(arguments) -> str:
    out = arguments.out
    cells = fig4.compute_figure4()
    checks = fig4.shape_checks(cells)
    if out is not None:
        write_csv(
            out / "figure4.csv",
            ["initial", "d", "mu", "p_safe_merge", "p_safe_split", "p_polluted_merge"],
            [
                [
                    c.initial,
                    c.d,
                    c.mu,
                    c.p_safe_merge,
                    c.p_safe_split,
                    c.p_polluted_merge,
                ]
                for c in cells
            ],
        )
    return fig4.render_figure4(cells) + "\n\nshape checks: " + str(checks)


def _run_figure5(arguments) -> str:
    out = arguments.out
    curves = fig5.compute_figure5()
    checks = fig5.shape_checks(curves)
    if out is not None:
        for curve in curves:
            name = f"figure5_n{curve.n_clusters}_d{round(100 * curve.d)}.csv"
            write_csv(
                out / name,
                ["events", "safe_fraction", "polluted_fraction"],
                list(
                    zip(
                        curve.series.events.tolist(),
                        curve.series.safe_fraction.tolist(),
                        curve.series.polluted_fraction.tolist(),
                    )
                ),
            )
    return fig5.render_figure5(curves) + "\n\nshape checks: " + str(checks)


def _run_table1(arguments) -> str:
    out = arguments.out
    cells = tab1.compute_table1()
    if out is not None:
        write_csv(
            out / "table1.csv",
            ["mu", "d", "E(T_S)", "E(T_P)", "paper_E(T_S)", "paper_E(T_P)"],
            [
                [
                    c.mu,
                    c.d,
                    c.expected_safe,
                    c.expected_polluted,
                    c.paper_safe,
                    c.paper_polluted,
                ]
                for c in cells
            ],
        )
    gap = tab1.max_relative_gap(cells)
    return (
        tab1.render_table1(cells)
        + f"\n\nmax relative gap vs published cells: {100 * gap:.2f}%"
    )


def _run_table2(arguments) -> str:
    out = arguments.out
    rows = tab2.compute_table2()
    if out is not None:
        write_csv(
            out / "table2.csv",
            [
                "mu",
                "E(T_S,1)",
                "E(T_S,2)",
                "E(T_P,1)",
                "E(T_P,2)",
                "E(T_S)",
                "E(T_P)",
            ],
            [
                [
                    r.mu,
                    r.safe_first,
                    r.safe_second,
                    r.polluted_first,
                    r.polluted_second,
                    r.total_safe,
                    r.total_polluted,
                ]
                for r in rows
            ],
        )
    negligible = tab2.alternation_is_negligible(rows)
    return (
        tab2.render_table2(rows)
        + f"\n\nfirst sojourn carries the mass: {negligible}"
    )


def _run_ablations(arguments) -> str:
    out = arguments.out
    adversaries = tuple(
        name.strip()
        for name in getattr(
            arguments, "adversaries", "strong,passive,greedy-leave"
        ).split(",")
        if name.strip()
    )
    k_points = ablations.compute_k_sweep()
    nu_points = ablations.compute_nu_sweep()
    join_points = ablations.compute_join_policy_ablation()
    comparisons = ablations.compare_adversaries(adversaries=adversaries)
    if out is not None:
        write_csv(
            out / "ablation_k.csv",
            ["k", "E(T_S)", "E(T_P)", "p_polluted_merge"],
            [
                [p.k, p.expected_safe, p.expected_polluted, p.p_polluted_merge]
                for p in k_points
            ],
        )
        write_csv(
            out / "ablation_nu.csv",
            ["nu", "E(T_P)", "p_polluted_merge"],
            [[p.nu, p.expected_polluted, p.p_polluted_merge] for p in nu_points],
        )
    sections = [
        ablations.render_k_sweep(k_points, mu=0.20, d=0.90),
        f"k=1 minimizes E(T_P): {ablations.k1_dominates(k_points)}",
        ablations.render_nu_sweep(nu_points, k=7, mu=0.20, d=0.90),
        ablations.render_join_policy_ablation(join_points),
        (
            "spare-first join dominates: "
            f"{ablations.spare_first_dominates(join_points)}"
        ),
        ablations.render_adversary_comparison(comparisons),
    ]
    return "\n\n".join(sections)


def _run_report(arguments) -> str:
    from repro.analysis.report import build_sections, render_report

    out = arguments.out
    sections = build_sections()
    text = render_report(sections)
    if out is not None:
        target = out / "report.md"
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(text)
        return f"report written to {target}"
    return text


_RUNNERS = {
    "figure3": _run_figure3,
    "figure4": _run_figure4,
    "figure5": _run_figure5,
    "table1": _run_table1,
    "table2": _run_table2,
    "ablations": _run_ablations,
    "report": _run_report,
}


# -- scenario subcommand -----------------------------------------------------

def _metrics_line(metrics: dict[str, float], limit: int = 6) -> str:
    """First ``limit`` metrics as ``key=value`` tokens.

    Per-operation ``op:*`` metrics are noise at sweep-table granularity,
    so they only fill slots left over after every summary metric (the
    sort is stable, so each group keeps its insertion order).  A spec
    whose metrics are *all* per-operation still renders them instead of
    an empty cell -- previously the filter dropped them whenever the
    dict was larger than ``limit``, regardless of what else it held.
    """
    ordered = sorted(metrics, key=lambda key: key.startswith("op:"))
    parts = []
    for key in ordered[:limit]:
        value = metrics[key]
        rendered = f"{value:.6g}" if isinstance(value, float) else str(value)
        parts.append(f"{key}={rendered}")
    return " ".join(parts)


def _run_scenario_report(arguments) -> int:
    """Render cached sweep results as one aligned text table."""
    from repro.scenario.report import collect_records, sweep_report

    stream = getattr(arguments, "stream", None)
    records = collect_records(
        cache_dir=arguments.cache_dir, stream_path=stream
    )
    source = stream if stream else arguments.cache_dir
    text = sweep_report(
        records,
        name=getattr(arguments, "name", None),
        metrics=getattr(arguments, "metrics", None),
        source=str(source),
    )
    if text is None:
        print("no cached results match")
        return 1
    print(text)
    return 0


def _run_scenario(arguments) -> int:
    from repro.scenario import backends  # noqa: F401 -- populate ENGINES
    from repro.scenario import (
        ADVERSARIES,
        CHURN_MODELS,
        ENGINES,
        SweepSpec,
        load_scenario,
    )
    from repro.scenario.runner import SweepRunner, list_cached

    if arguments.action == "report":
        return _run_scenario_report(arguments)
    cache_dir = None if arguments.no_cache else arguments.cache_dir
    if arguments.action == "list":
        print("engines:     " + ", ".join(ENGINES.names()))
        print("adversaries: " + ", ".join(ADVERSARIES.names()))
        print("churn:       " + ", ".join(CHURN_MODELS.names()))
        entries = list_cached(arguments.cache_dir)
        if entries:
            rows = [
                [
                    entry["name"],
                    entry["engine"],
                    entry["adversary"],
                    entry["churn"],
                    entry["key"][:12],
                ]
                for entry in entries
            ]
            print()
            print(
                render_table(
                    ["scenario", "engine", "adversary", "churn", "key"],
                    rows,
                    title=f"cached results under {arguments.cache_dir}",
                )
            )
        else:
            print(f"\nno cached results under {arguments.cache_dir}")
        return 0

    document = load_scenario(arguments.spec_file)
    runner = SweepRunner(
        workers=getattr(arguments, "workers", 0), cache_dir=cache_dir
    )
    if arguments.action == "run":
        if isinstance(document, SweepSpec):
            print(
                f"{arguments.spec_file} declares sweep axes; "
                "use 'repro scenario sweep'"
            )
            return 2
        result = runner.run(document)
        print(f"scenario: {result.name}")
        print(f"engine:   {result.engine}")
        print(f"key:      {result.key}")
        print(f"cached:   {runner.cache_hits > 0}")
        for key, value in result.metrics.items():
            print(f"  {key} = {value:.10g}")
        return 0

    # sweep
    specs = (
        document.expand()
        if isinstance(document, SweepSpec)
        else [document]
    )
    results = runner.sweep(
        specs, stream_path=getattr(arguments, "stream", None)
    )
    rows = [
        [
            result.name,
            result.engine,
            result.meta.get("adversary", "?"),
            result.meta.get("churn", "?"),
            _metrics_line(result.metrics),
        ]
        for result in results
    ]
    print(
        render_table(
            ["scenario", "engine", "adversary", "churn", "metrics"],
            rows,
            title=(
                f"sweep of {len(results)} points "
                f"({runner.cache_hits} cached, {runner.cache_misses} computed)"
            ),
        )
    )
    return 0


# -- distributed fabric ------------------------------------------------------

def _run_coordinator(arguments) -> int:
    """``repro sweep-coordinator``: serve a sweep's durable job queue."""
    from repro.distributed.coordinator import SweepCoordinator
    from repro.scenario.spec import SweepSpec, load_scenario

    if (
        arguments.spec_file is None
        and not arguments.watch
        and not arguments.ledger.exists()
    ):
        # No grid, no inbox, nothing to resume: refuse loudly.  With
        # an existing ledger the coordinator adopts its scheduled
        # points and exits when they drain -- the one-shot recovery
        # invocation after a crash.
        print(
            "sweep-coordinator needs a spec file, an existing "
            "--ledger to resume, or --watch to serve submitted sweeps"
        )
        return 2
    specs = []
    if arguments.spec_file is not None:
        document = load_scenario(arguments.spec_file)
        specs = (
            document.expand()
            if isinstance(document, SweepSpec)
            else [document]
        )
    coordinator = SweepCoordinator(
        specs,
        cache_dir=arguments.cache_dir,
        ledger_path=arguments.ledger,
        host=arguments.host,
        port=arguments.port,
        lease_timeout=(
            arguments.lease_timeout if arguments.lease_timeout > 0 else None
        ),
        watch=arguments.watch,
        compact_tail_bytes=(
            arguments.compact_threshold
            if arguments.compact_threshold > 0
            else None
        ),
    )

    def announce() -> None:
        coordinator.ready.wait()
        mode = " (watching for submissions)" if arguments.watch else ""
        print(
            f"coordinator: {len(specs)} points on "
            f"{arguments.host}:{coordinator.port}{mode} "
            f"(ledger: {arguments.ledger}, cache: {arguments.cache_dir})",
            flush=True,
        )

    import threading

    threading.Thread(target=announce, daemon=True).start()
    try:
        summary = coordinator.run()
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        print("interrupted; pending points remain in the ledger")
        return 130
    print(
        f"sweep complete: {summary['done']}/{summary['total']} done "
        f"({summary['computed']} computed, "
        f"{summary['from_cache']} from cache, "
        f"{summary['resumed_from_ledger']} resumed, "
        f"{len(summary['failed'])} failed) "
        f"in {summary['elapsed_seconds']:.2f}s"
    )
    for worker, count in sorted(summary["workers"].items()):
        print(f"  {worker}: {count} points")
    for key, error in sorted(summary["failed"].items()):
        print(f"  FAILED {key[:12]}: {error}")
    return 1 if summary["failed"] or summary["pending"] else 0


def _run_worker_command(arguments) -> int:
    """``repro worker``: claim and execute points from a coordinator."""
    from repro.distributed.protocol import ProtocolError
    from repro.distributed.worker import run_worker

    try:
        stats = run_worker(
            arguments.host,
            arguments.port,
            worker_id=arguments.id,
            max_points=arguments.max_points,
            connect_timeout=arguments.connect_timeout,
            heartbeat_every=(
                arguments.heartbeat_every
                if arguments.heartbeat_every > 0
                else None
            ),
            store_dir=arguments.store_dir,
            reconnect_timeout=arguments.reconnect_timeout,
        )
    except ProtocolError as error:
        print(f"worker error: {error}")
        return 1
    except OSError as error:
        # The initial connect window closed without ever reaching a
        # coordinator: a clean diagnostic, not a traceback -- the
        # supervisor restarting this worker needs the exit code and
        # the address, nothing else.
        print(
            f"worker error: never connected to "
            f"{arguments.host}:{arguments.port} within "
            f"{arguments.connect_timeout:.0f}s ({error})"
        )
        return 1
    print(
        f"worker {stats['worker']}: {stats['executed']} points executed, "
        f"{stats['failed']} failed"
    )
    # A supervisor must see point failures: healthy exit means every
    # executed point was stored.
    return 1 if stats["failed"] else 0


def _run_serve(arguments) -> int:
    """``repro serve``: HTTP service over the result store + ledger."""
    from repro.distributed.service import ResultsService

    service = ResultsService(
        arguments.cache_dir,
        ledger_path=arguments.ledger,
        host=arguments.host,
        port=arguments.port,
        auth_token=arguments.auth_token,
        max_backlog=(
            arguments.max_backlog if arguments.max_backlog > 0 else None
        ),
    )
    print(
        f"serving {arguments.cache_dir} on "
        f"http://{arguments.host}:{service.port} "
        "(/healthz /progress /results /results/<key> /report; "
        "POST /submit /cancel)",
        flush=True,
    )
    try:
        service.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        pass
    finally:
        service.close()
    return 0


def _run_trace(arguments) -> int:
    """``repro trace``: reconstruct one sweep's per-point timeline."""
    from repro.obs.timeline import build_timeline, render_timeline
    from repro.obs.trace import telemetry_dir

    telemetry = arguments.telemetry
    if telemetry is None:
        telemetry = telemetry_dir()
    if not arguments.ledger.exists():
        print(f"no ledger at {arguments.ledger}")
        return 2
    try:
        timeline = build_timeline(
            arguments.sweep, arguments.ledger, telemetry
        )
    except KeyError as error:
        print(error.args[0] if error.args else str(error))
        return 1
    print(
        render_timeline(
            timeline,
            slow=arguments.slow if arguments.slow > 0 else None,
        )
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Regenerate the tables and figures of 'Modeling and "
            "Evaluating Targeted Attacks in Large Scale Dynamic Systems' "
            "(DSN 2011), or run declarative scenarios."
        ),
    )
    subparsers = parser.add_subparsers(
        dest="experiment",
        required=True,
        metavar="experiment",
        help="which artifact to regenerate (or 'scenario')",
    )
    for name in EXPERIMENTS + EXTRA_EXPERIMENTS + ("all",):
        experiment = subparsers.add_parser(name)
        experiment.add_argument(
            "--out",
            type=pathlib.Path,
            default=None,
            help="directory for CSV artifacts (omit to print only)",
        )
        if name in ("ablations", "all"):
            experiment.add_argument(
                "--adversaries",
                default="strong,passive,greedy-leave",
                help=(
                    "comma-separated adversary registry names for the "
                    "agent-based comparison"
                ),
            )

    from repro.scenario.runner import DEFAULT_CACHE_DIR

    scenario = subparsers.add_parser(
        "scenario", help="declarative scenario runner"
    )
    actions = scenario.add_subparsers(
        dest="action", required=True, metavar="action"
    )
    for action in ("run", "sweep", "list", "report"):
        sub = actions.add_parser(action)
        if action in ("run", "sweep"):
            sub.add_argument(
                "spec_file",
                type=pathlib.Path,
                help="scenario spec (.json or .toml)",
            )
            sub.add_argument(
                "--no-cache",
                action="store_true",
                help="recompute even when a cached result exists",
            )
        else:
            sub.set_defaults(no_cache=False)
        sub.add_argument(
            "--cache-dir",
            type=pathlib.Path,
            default=DEFAULT_CACHE_DIR,
            help=f"result cache directory (default: {DEFAULT_CACHE_DIR})",
        )
        if action == "sweep":
            sub.add_argument(
                "--workers",
                type=int,
                default=0,
                help="worker processes for grid fan-out (0 = in-process)",
            )
            sub.add_argument(
                "--stream",
                type=pathlib.Path,
                default=None,
                help=(
                    "append every result to this JSONL file as it "
                    "completes (for grids too large to buffer)"
                ),
            )
        if action == "report":
            sub.add_argument(
                "--name",
                default=None,
                help="only report scenarios whose name contains this",
            )
            sub.add_argument(
                "--metrics",
                default=None,
                help="comma-separated metric columns (default: first 6)",
            )
            sub.add_argument(
                "--stream",
                type=pathlib.Path,
                default=None,
                help="read results from a sweep JSONL file instead of "
                "the cache directory",
            )

    # -- distributed fabric --------------------------------------------------
    default_ledger = DEFAULT_CACHE_DIR / "sweep-ledger.jsonl"

    coordinator = subparsers.add_parser(
        "sweep-coordinator",
        help="serve a sweep's durable job queue to repro workers",
    )
    coordinator.add_argument(
        "spec_file",
        type=pathlib.Path,
        nargs="?",
        default=None,
        help=(
            "scenario or sweep spec (.json or .toml); optional with "
            "--watch (submitted sweeps arrive via the ledger) or with "
            "an existing --ledger (resume its scheduled points)"
        ),
    )
    coordinator.add_argument(
        "--host", default="127.0.0.1", help="bind address"
    )
    coordinator.add_argument(
        "--port",
        type=int,
        default=7641,
        help="bind port (0 = pick a free port)",
    )
    coordinator.add_argument(
        "--ledger",
        type=pathlib.Path,
        default=default_ledger,
        help=f"durable JSONL job ledger (default: {default_ledger})",
    )
    coordinator.add_argument(
        "--cache-dir",
        type=pathlib.Path,
        default=DEFAULT_CACHE_DIR,
        help=f"shared result store (default: {DEFAULT_CACHE_DIR})",
    )
    coordinator.add_argument(
        "--lease-timeout",
        type=float,
        default=600.0,
        help=(
            "seconds a claimed point may go without a heartbeat before "
            "it is requeued (0 disables lease timeouts; default: 600)"
        ),
    )
    coordinator.add_argument(
        "--watch",
        action="store_true",
        help=(
            "stay resident after the queue drains and execute sweeps "
            "submitted via 'repro serve' POST /submit on the same ledger"
        ),
    )
    coordinator.add_argument(
        "--compact-threshold",
        type=int,
        default=0,
        help=(
            "compact a sharded ledger (--ledger pointing at a "
            "directory) once its shard tail exceeds this many bytes "
            "(0 disables; default: 0)"
        ),
    )

    worker = subparsers.add_parser(
        "worker", help="claim and execute sweep points from a coordinator"
    )
    worker.add_argument(
        "--host", default="127.0.0.1", help="coordinator address"
    )
    worker.add_argument(
        "--port", type=int, default=7641, help="coordinator port"
    )
    worker.add_argument(
        "--id", default=None, help="worker id (default: <hostname>-<pid>)"
    )
    worker.add_argument(
        "--max-points",
        type=int,
        default=None,
        help="disconnect after this many points (default: until shutdown)",
    )
    worker.add_argument(
        "--connect-timeout",
        type=float,
        default=10.0,
        help="seconds to retry the initial connection",
    )
    worker.add_argument(
        "--heartbeat-every",
        type=float,
        default=15.0,
        help="seconds between mid-point heartbeats (0 disables)",
    )
    worker.add_argument(
        "--store-dir",
        type=pathlib.Path,
        default=None,
        help=(
            "shared result store this worker can write directly "
            "(publish results itself and send slim RESULT-REF frames "
            "instead of shipping payloads; default: off)"
        ),
    )
    worker.add_argument(
        "--reconnect-timeout",
        type=float,
        default=60.0,
        help=(
            "seconds to retry the connection after the coordinator "
            "drops it -- workers ride out a coordinator restart "
            "(0 = exit on disconnect; default: 60)"
        ),
    )

    serve = subparsers.add_parser(
        "serve", help="HTTP service over cached sweep results"
    )
    serve.add_argument(
        "--host", default="127.0.0.1", help="bind address"
    )
    serve.add_argument(
        "--port",
        type=int,
        default=8080,
        help="bind port (0 = pick a free port)",
    )
    serve.add_argument(
        "--cache-dir",
        type=pathlib.Path,
        default=DEFAULT_CACHE_DIR,
        help=f"result store to serve (default: {DEFAULT_CACHE_DIR})",
    )
    serve.add_argument(
        "--ledger",
        type=pathlib.Path,
        default=default_ledger,
        help="job ledger backing /progress "
        f"(default: {default_ledger})",
    )
    serve.add_argument(
        "--auth-token",
        default=None,
        help=(
            "require 'Authorization: Bearer <token>' on POST /submit "
            "and /cancel (default: open)"
        ),
    )
    serve.add_argument(
        "--max-backlog",
        type=int,
        default=0,
        help=(
            "answer POST /submit with 503 + Retry-After while the "
            "ledger holds this many unfinished points "
            "(0 disables; default: 0)"
        ),
    )

    trace = subparsers.add_parser(
        "trace",
        help=(
            "reconstruct one submitted sweep's per-point timeline from "
            "the ledger and the span telemetry"
        ),
    )
    trace.add_argument(
        "sweep", help="sweep id (or any unambiguous prefix)"
    )
    trace.add_argument(
        "--ledger",
        type=pathlib.Path,
        default=default_ledger,
        help=f"job ledger to replay (default: {default_ledger})",
    )
    trace.add_argument(
        "--telemetry",
        type=pathlib.Path,
        default=None,
        help=(
            "span JSONL directory written by instrumented processes "
            "(default: $REPRO_TELEMETRY; timelines degrade to "
            "ledger-only columns without it)"
        ),
    )
    trace.add_argument(
        "--slow",
        type=int,
        default=0,
        help="show only the N slowest points by total wall time",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point."""
    arguments = build_parser().parse_args(argv)
    if arguments.experiment == "scenario":
        return _run_scenario(arguments)
    if arguments.experiment == "sweep-coordinator":
        return _run_coordinator(arguments)
    if arguments.experiment == "worker":
        return _run_worker_command(arguments)
    if arguments.experiment == "serve":
        return _run_serve(arguments)
    if arguments.experiment == "trace":
        return _run_trace(arguments)
    names = EXPERIMENTS if arguments.experiment == "all" else (arguments.experiment,)
    for name in names:
        print(f"=== {name} ===")
        print(_RUNNERS[name](arguments))
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
