"""Framing tests: adversarial payloads, partial buffers, bad prefixes."""

import struct

import pytest

from repro.distributed.protocol import (
    MAX_FRAME_BYTES,
    ProtocolError,
    decode_frame,
    encode_frame,
)

ADVERSARIAL_MESSAGES = [
    {"type": "claim"},
    {"type": "hello", "worker": ""},
    {"type": "result", "key": "f" * 64, "result": {"metrics": {}}},
    {"type": "x", "payload": "snowman ☃ and \U0001f409 dragon"},
    {"type": "x", "payload": 'quotes " and \\ backslashes \n newlines'},
    {"type": "x", "payload": "\x00\x01\x02 control chars"},
    {"type": "x", "nested": {"a": [1, 2.5, None, True, {"b": ["c"]}]}},
    {"type": "x", "big": "A" * 100_000},
    {"type": "x", "floats": [1e308, -0.0, 1e-308]},
    {"type": "123", "456": "789"},
]


class TestRoundTrip:
    @pytest.mark.parametrize("message", ADVERSARIAL_MESSAGES)
    def test_encode_decode_round_trip(self, message):
        decoded, rest = decode_frame(encode_frame(message))
        assert decoded == message
        assert rest == b""

    def test_back_to_back_frames_split_correctly(self):
        wire = b"".join(encode_frame(m) for m in ADVERSARIAL_MESSAGES)
        seen = []
        while wire:
            message, wire = decode_frame(wire)
            seen.append(message)
        assert seen == ADVERSARIAL_MESSAGES

    def test_partial_buffer_returns_none_at_every_cut(self):
        frame = encode_frame({"type": "x", "payload": "hello"})
        for cut in range(len(frame)):
            message, rest = decode_frame(frame[:cut])
            assert message is None
            assert rest == frame[:cut]

    def test_trailing_bytes_preserved(self):
        frame = encode_frame({"type": "a"})
        message, rest = decode_frame(frame + b"extra")
        assert message == {"type": "a"}
        assert rest == b"extra"


class TestRejection:
    def test_oversized_length_prefix_rejected(self):
        header = struct.pack(">I", MAX_FRAME_BYTES + 1)
        with pytest.raises(ProtocolError, match="exceeds"):
            decode_frame(header + b"x")

    def test_oversized_message_refused_on_send(self):
        with pytest.raises(ProtocolError, match="exceeds"):
            encode_frame({"type": "x", "blob": "A" * (MAX_FRAME_BYTES + 1)})

    def test_non_json_payload_rejected(self):
        payload = b"\xff\xfe not json"
        with pytest.raises(ProtocolError, match="undecodable"):
            decode_frame(struct.pack(">I", len(payload)) + payload)

    def test_non_object_payload_rejected(self):
        payload = b"[1, 2, 3]"
        with pytest.raises(ProtocolError, match="object"):
            decode_frame(struct.pack(">I", len(payload)) + payload)

    def test_object_without_type_rejected(self):
        payload = b'{"no": "type"}'
        with pytest.raises(ProtocolError, match="type"):
            decode_frame(struct.pack(">I", len(payload)) + payload)

    def test_typeless_message_refused_on_send(self):
        with pytest.raises(ProtocolError, match="type"):
            encode_frame({"not_type": 1})


class TestAsyncFraming:
    def test_stream_round_trip_over_a_real_socket_pair(self):
        import asyncio

        async def scenario():
            received = []
            done = asyncio.Event()

            async def handler(reader, writer):
                from repro.distributed.protocol import read_frame

                while True:
                    message = await read_frame(reader)
                    if message is None:
                        break
                    received.append(message)
                writer.close()
                done.set()

            server = await asyncio.start_server(handler, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            from repro.distributed.protocol import write_frame

            _, writer = await asyncio.open_connection("127.0.0.1", port)
            for message in ADVERSARIAL_MESSAGES:
                await write_frame(writer, message)
            writer.close()
            await writer.wait_closed()
            await asyncio.wait_for(done.wait(), timeout=5)
            server.close()
            await server.wait_closed()
            return received

        assert asyncio.run(scenario()) == ADVERSARIAL_MESSAGES

    def test_eof_mid_frame_raises_protocol_error(self):
        import asyncio

        async def scenario():
            from repro.distributed.protocol import read_frame

            outcome = {}

            async def handler(reader, writer):
                try:
                    await read_frame(reader)
                except ProtocolError as error:
                    outcome["error"] = str(error)
                writer.close()

            server = await asyncio.start_server(handler, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            _, writer = await asyncio.open_connection("127.0.0.1", port)
            frame = encode_frame({"type": "x", "payload": "truncated"})
            writer.write(frame[: len(frame) // 2])  # torn mid-send
            await writer.drain()
            writer.close()
            await writer.wait_closed()
            await asyncio.sleep(0.1)
            server.close()
            await server.wait_closed()
            return outcome

        outcome = asyncio.run(scenario())
        assert "mid" in outcome["error"]


