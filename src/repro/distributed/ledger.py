"""Durable, replayable job state for distributed sweeps.

The ledger is an append-only JSONL file recording the lifecycle of
every grid point, keyed by the point's sha256 content address (the
same key that names its cache file)::

    {"event": "scheduled", "key": "<sha256>", "spec": {...}}
    {"event": "claimed",   "key": "<sha256>", "worker": "w-1"}
    {"event": "requeued",  "key": "<sha256>", "worker": "w-1",
     "reason": "lease-expired"}
    {"event": "done",      "key": "<sha256>", "worker": "w-1",
     "elapsed": 0.41}
    {"event": "failed",    "key": "<sha256>", "worker": "w-1",
     "error": "..."}
    {"event": "submitted", "sweep": "<sha256>", "name": "grid",
     "keys": ["<sha256>", ...]}

Appends go through :class:`~repro.scenario.store.JsonlAppender` (one
``O_APPEND`` write per record, fsynced), so a crashed coordinator loses
at most its final, torn line -- which :meth:`SweepLedger.replay`
skips.  Replay folds the event stream into per-key terminal state:
``done`` and ``failed`` are absorbing; a ``claimed`` without a
subsequent terminal event is *stale* after a crash (the claiming
connection no longer exists) and its point is simply pending again;
``requeued`` records a coordinator explicitly reclaiming a lease
(worker hung but connected) so replay agrees with its live queue.
The ``done`` record is appended only *after* the result has been
atomically published to the content-addressed store, so "ledgered done"
implies "readable result".

``submitted`` groups points into one named sweep -- the unit the
``POST /submit`` endpoint of ``repro serve`` accepts and the unit
``/progress?sweep=`` reports on.  It is the one record kind carrying
no ``key``.  Because every record is a single whole-line ``O_APPEND``
write, the submit service and the coordinator can append to the same
ledger from different processes without locking: lines interleave,
they never tear.
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.scenario.spec import ScenarioSpec
from repro.scenario.store import JsonlAppender, read_jsonl

__all__ = ["LedgerState", "SweepLedger"]

EVENT_SCHEDULED = "scheduled"
EVENT_CLAIMED = "claimed"
EVENT_REQUEUED = "requeued"
EVENT_DONE = "done"
EVENT_FAILED = "failed"
EVENT_SUBMITTED = "submitted"

_EVENTS = {
    EVENT_SCHEDULED,
    EVENT_CLAIMED,
    EVENT_REQUEUED,
    EVENT_DONE,
    EVENT_FAILED,
}


@dataclass
class LedgerState:
    """Folded view of one ledger replay.

    ``scheduled`` maps every key ever scheduled to its wire-form spec;
    ``done``/``failed`` are the terminal keys; ``claims`` maps each
    non-terminal claimed key to the last worker that claimed it (purely
    diagnostic after a crash -- the claim is stale by construction,
    and a ``requeued`` record clears it eagerly); ``sweeps`` maps each
    submitted sweep id to the keys it groups.
    """

    scheduled: dict[str, dict[str, Any]] = field(default_factory=dict)
    done: set[str] = field(default_factory=set)
    failed: dict[str, str] = field(default_factory=dict)
    claims: dict[str, str] = field(default_factory=dict)
    sweeps: dict[str, tuple[str, ...]] = field(default_factory=dict)

    @property
    def pending(self) -> set[str]:
        """Scheduled keys with no terminal event (stale claims included)."""
        return set(self.scheduled) - self.done - set(self.failed)


class SweepLedger:
    """Append-side API over one ledger file.

    Writers are the coordinator (lifecycle events) and the submit
    service (``scheduled``/``submitted`` batches) -- safe concurrently
    because every record is one whole-line ``O_APPEND`` write.
    Readers (progress endpoints, a resumed coordinator, the
    coordinator's live tail) use :meth:`replay` or the classmethod
    :meth:`replay_path` on the file directly.
    """

    def __init__(self, path: str | pathlib.Path) -> None:
        self._path = pathlib.Path(path)
        # Terminal events ("done"/"failed") fsync per record -- they
        # must survive a crash, or a resumed coordinator would re-run
        # points whose results it already has.  "scheduled"/"claimed"
        # records skip the flush: losing one only costs a reschedule or
        # a stale-claim diagnostic, and per-assignment fsyncs would
        # serialize the whole fabric on disk latency.
        self._appender = JsonlAppender(self._path, fsync=False)

    @property
    def path(self) -> pathlib.Path:
        """The ledger file."""
        return self._path

    # -- append side --------------------------------------------------------

    def record_scheduled(
        self,
        specs: Iterable[ScenarioSpec],
        already_scheduled: set[str] | None = None,
    ) -> None:
        """Schedule points (skipping keys this ledger already holds).

        ``already_scheduled`` lets a caller that just replayed the
        ledger pass the known keys instead of paying a second full
        replay here.
        """
        if already_scheduled is None:
            already_scheduled = set(self.replay().scheduled)
        for spec in specs:
            key = spec.key()
            if key in already_scheduled:
                continue
            self._appender.append(
                {
                    "event": EVENT_SCHEDULED,
                    "key": key,
                    "spec": spec.to_dict(),
                }
            )

    def record_claimed(self, key: str, worker: str) -> None:
        """A worker claimed ``key``."""
        self._appender.append(
            {"event": EVENT_CLAIMED, "key": key, "worker": worker}
        )

    def record_requeued(
        self, key: str, worker: str, reason: str = "lease-expired"
    ) -> None:
        """The coordinator reclaimed ``key`` from ``worker``.

        No fsync: losing this record costs nothing on resume (a claim
        with no terminal event replays as pending either way); the
        record exists so a *live* replay agrees with the coordinator's
        queue, and as the audit trail of lease expiries.
        """
        self._appender.append(
            {
                "event": EVENT_REQUEUED,
                "key": key,
                "worker": worker,
                "reason": reason,
            }
        )

    def record_submitted(
        self,
        sweep: str,
        keys: Iterable[str],
        name: str | None = None,
    ) -> None:
        """Group ``keys`` under one submitted sweep id.

        Fsynced: a 202 from ``POST /submit`` promises the sweep
        survives any crash, and this record (appended *after* the
        batch of ``scheduled`` records on the same descriptor) is the
        last line of that promise -- the flush covers the whole batch.
        """
        record: dict[str, Any] = {
            "event": EVENT_SUBMITTED,
            "sweep": sweep,
            "keys": list(keys),
        }
        if name is not None:
            record["name"] = name
        self._appender.append(record, fsync=True)

    def record_done(
        self, key: str, worker: str, elapsed: float | None = None
    ) -> None:
        """``key`` finished and its result is durably stored."""
        record = {"event": EVENT_DONE, "key": key, "worker": worker}
        if elapsed is not None:
            record["elapsed"] = float(elapsed)
        self._appender.append(record, fsync=True)

    def record_failed(self, key: str, worker: str, error: str) -> None:
        """``key`` raised while executing (terminal: not requeued)."""
        self._appender.append(
            {
                "event": EVENT_FAILED,
                "key": key,
                "worker": worker,
                "error": str(error),
            },
            fsync=True,
        )

    def close(self) -> None:
        """Release the append descriptor."""
        self._appender.close()

    def __enter__(self) -> "SweepLedger":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- replay side --------------------------------------------------------

    def replay(self) -> LedgerState:
        """Fold this ledger's event stream (see :meth:`replay_path`)."""
        return self.replay_path(self._path)

    @classmethod
    def replay_path(cls, path: str | pathlib.Path) -> LedgerState:
        """Fold a ledger file into per-key terminal state.

        Tolerates unparseable fragment lines (crash-mid-append
        artifacts, isolated by the appender's boundary repair; losing
        one only re-runs idempotent work), but raises on records that
        parse yet carry a malformed event -- a ledger that lies about
        ``done`` points must fail loudly, not resume quietly.
        """
        state = LedgerState()
        for record in read_jsonl(path, strict=False):
            if not isinstance(record, dict):
                raise ValueError(
                    f"{path}: malformed ledger record {record!r}"
                )
            event = record.get("event")
            if event == EVENT_SUBMITTED:
                sweep = record.get("sweep")
                keys = record.get("keys")
                if not isinstance(sweep, str) or not isinstance(keys, list):
                    raise ValueError(
                        f"{path}: malformed ledger record {record!r}"
                    )
                state.sweeps[sweep] = tuple(str(key) for key in keys)
                continue
            key = record.get("key")
            if event not in _EVENTS or not isinstance(key, str):
                raise ValueError(
                    f"{path}: malformed ledger record {record!r}"
                )
            if event == EVENT_SCHEDULED:
                state.scheduled.setdefault(key, record.get("spec", {}))
            elif event == EVENT_CLAIMED:
                state.claims[key] = record.get("worker", "?")
            elif event == EVENT_REQUEUED:
                state.claims.pop(key, None)
            elif event == EVENT_DONE:
                state.done.add(key)
                state.claims.pop(key, None)
                # Mirrors the coordinator: a stored result supersedes a
                # racing worker's earlier failure report.
                state.failed.pop(key, None)
            elif event == EVENT_FAILED:
                if key not in state.done:
                    state.failed[key] = record.get("error", "")
                state.claims.pop(key, None)
        return state
