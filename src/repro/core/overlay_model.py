"""Overlay-level model: n clusters competing for events (Section VIII).

The overlay holds ``n`` clusters, each following the same chain ``X``;
every join/leave event hits a uniformly chosen cluster.  Theorem 2 gives
the expected fraction of safe and polluted clusters after ``m`` events
as ``alpha (T/n + (1 - 1/n) I)^m 1_{S or P}`` -- reproduced in Figure 5.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.initial import resolve_initial
from repro.core.matrix import ClusterChain
from repro.core.parameters import ModelParameters
from repro.markov.competing import (
    competing_subset_series,
    competing_transient_law,
)


@dataclass(frozen=True)
class OverlaySeries:
    """Recorded trajectory of expected overlay-wide proportions."""

    events: np.ndarray
    safe_fraction: np.ndarray
    polluted_fraction: np.ndarray
    n_clusters: int

    @property
    def absorbed_fraction(self) -> np.ndarray:
        """Expected fraction of clusters already merged or split."""
        return 1.0 - self.safe_fraction - self.polluted_fraction

    @property
    def peak_polluted_fraction(self) -> float:
        """Maximum of the polluted-fraction series (paper: < 2.2 %)."""
        return float(self.polluted_fraction.max())


class OverlayModel:
    """Expected behaviour of an overlay of ``n_clusters`` identical
    clusters under uniformly dispatched events (Theorems 1 and 2)."""

    def __init__(
        self,
        params: ModelParameters,
        n_clusters: int,
        chain: ClusterChain | None = None,
    ) -> None:
        if n_clusters < 1:
            raise ValueError(f"n_clusters must be >= 1, got {n_clusters}")
        self._params = params
        self._n = n_clusters
        self._chain = chain if chain is not None else ClusterChain(params)

    @property
    def params(self) -> ModelParameters:
        """Cluster-level parameters."""
        return self._params

    @property
    def n_clusters(self) -> int:
        """Number of competing clusters ``n``."""
        return self._n

    @property
    def chain(self) -> ClusterChain:
        """Underlying single-cluster chain."""
        return self._chain

    def marginal_law(
        self, initial: str | np.ndarray, n_events: int
    ) -> np.ndarray:
        """Theorem 1/2: law of one cluster's chain after ``n_events``
        global events, over the transient ordering."""
        alpha = resolve_initial(self._chain, initial)
        return competing_transient_law(
            alpha, self._chain.transient_matrix, self._n, n_events
        )

    def proportion_series(
        self,
        initial: str | np.ndarray,
        n_events: int,
        record_every: int = 1,
    ) -> OverlaySeries:
        """Expected safe/polluted fractions after each recorded event
        count (Figure 5's two panels)."""
        alpha = resolve_initial(self._chain, initial)
        series = competing_subset_series(
            alpha,
            self._chain.transient_matrix,
            self._n,
            n_events,
            indicators={
                "safe": self._chain.safe_indicator(),
                "polluted": self._chain.polluted_indicator(),
            },
            record_every=record_every,
        )
        return OverlaySeries(
            events=series["events"],
            safe_fraction=series["safe"],
            polluted_fraction=series["polluted"],
            n_clusters=self._n,
        )

    def expected_counts(
        self, initial: str | np.ndarray, n_events: int
    ) -> tuple[float, float]:
        """``(E(N_S(m)), E(N_P(m)))`` -- Theorem 2 scaled by ``n``."""
        law = self.marginal_law(initial, n_events)
        safe = float(law @ self._chain.safe_indicator())
        polluted = float(law @ self._chain.polluted_indicator())
        return safe * self._n, polluted * self._n
