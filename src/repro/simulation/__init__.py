"""Discrete-event and Monte-Carlo simulation layer.

* :mod:`~repro.simulation.engine` -- deterministic event loop (simpy is
  unavailable offline; built from scratch).
* :mod:`~repro.simulation.churn` -- the model's Bernoulli event stream
  plus Poisson/heavy-tailed variants.
* :mod:`~repro.simulation.cluster_sim` -- agent-level single-cluster
  Monte Carlo validating Relations (5)-(9) (tier 1, the scalar
  semantics oracle).
* :mod:`~repro.simulation.batch` -- vectorized batch Monte-Carlo engine
  advancing whole cluster populations per NumPy call (tier 2, the
  scale/performance tier; statistically equivalent to tier 1).
* :mod:`~repro.simulation.overlay_sim` -- competing-clusters and full
  agent-based overlay simulations validating Theorem 2.
* :mod:`~repro.simulation.metrics` -- confidence intervals and
  model-vs-simulation comparison helpers.
"""

from repro.simulation.batch import (
    BatchClusterEngine,
    BatchCompetingClustersSimulation,
    BatchTrajectories,
    CompetingSeries,
    TrajectorySummaryAccumulator,
    batch_monte_carlo_summary,
    run_batch_trajectories,
)
from repro.simulation.churn import (
    ChurnEvent,
    EventKind,
    IIDKinds,
    ScheduledKinds,
    SessionPlan,
    bernoulli_event_stream,
    exponential_sessions,
    pareto_sessions,
    poisson_event_stream,
)
from repro.simulation.cluster_sim import (
    ClusterSimulator,
    ClusterTrajectory,
    MonteCarloSummary,
    SimulationBudgetError,
    monte_carlo_summary,
    sample_initial_state,
)
from repro.simulation.engine import (
    DiscreteEventEngine,
    EventHandle,
    SimulationError,
)
from repro.simulation.metrics import (
    ConfidenceInterval,
    SeriesAccumulator,
    mean_confidence_interval,
    relative_error,
    within_tolerance,
)
from repro.simulation.overlay_sim import (
    AgentOverlaySimulation,
    AgentRunResult,
    CompetingClustersSimulation,
    OverlaySnapshot,
)
from repro.simulation.rng import (
    DEFAULT_SEED,
    replication_seeds,
    root_generator,
    spawn_generators,
)

__all__ = [
    "DiscreteEventEngine",
    "EventHandle",
    "SimulationError",
    "ChurnEvent",
    "EventKind",
    "SessionPlan",
    "bernoulli_event_stream",
    "poisson_event_stream",
    "exponential_sessions",
    "pareto_sessions",
    "ClusterSimulator",
    "ClusterTrajectory",
    "MonteCarloSummary",
    "SimulationBudgetError",
    "monte_carlo_summary",
    "sample_initial_state",
    "BatchClusterEngine",
    "BatchCompetingClustersSimulation",
    "BatchTrajectories",
    "TrajectorySummaryAccumulator",
    "batch_monte_carlo_summary",
    "run_batch_trajectories",
    "IIDKinds",
    "ScheduledKinds",
    "CompetingClustersSimulation",
    "CompetingSeries",
    "AgentOverlaySimulation",
    "AgentRunResult",
    "OverlaySnapshot",
    "ConfidenceInterval",
    "SeriesAccumulator",
    "mean_confidence_interval",
    "relative_error",
    "within_tolerance",
    "DEFAULT_SEED",
    "root_generator",
    "spawn_generators",
    "replication_seeds",
]
