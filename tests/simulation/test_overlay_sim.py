"""Unit tests for the overlay-scale simulations."""

import numpy as np
import pytest

from repro.adversary import StrongAdversary
from repro.core.parameters import ModelParameters
from repro.overlay.overlay import OverlayConfig
from repro.simulation.overlay_sim import (
    AgentOverlaySimulation,
    CompetingClustersSimulation,
)


class TestCompetingClusters:
    def test_series_starts_all_safe_under_delta(self, rng):
        simulation = CompetingClustersSimulation(
            ModelParameters(mu=0.2, d=0.8), 20, rng
        )
        series = simulation.run(200, record_every=20)
        assert series.safe_fraction[0] == 1.0
        assert series.polluted_fraction[0] == 0.0
        assert series.n_clusters == 20

    def test_fractions_bounded(self, rng):
        simulation = CompetingClustersSimulation(
            ModelParameters(mu=0.3, d=0.9), 30, rng
        )
        series = simulation.run(500, record_every=50)
        total = series.safe_fraction + series.polluted_fraction
        assert np.all(total <= 1.0 + 1e-12)
        assert np.all(series.safe_fraction >= 0.0)

    def test_all_clusters_eventually_absorb(self, rng):
        simulation = CompetingClustersSimulation(
            ModelParameters(mu=0.1, d=0.5), 10, rng
        )
        series = simulation.run(5000, record_every=1000)
        assert series.safe_fraction[-1] + series.polluted_fraction[-1] < 0.2

    def test_n_validated(self, rng):
        with pytest.raises(ValueError):
            CompetingClustersSimulation(ModelParameters(), 0, rng)

    def test_recorded_axis(self, rng):
        simulation = CompetingClustersSimulation(
            ModelParameters(mu=0.2, d=0.5), 5, rng
        )
        series = simulation.run(100, record_every=30)
        assert list(series.events) == [0, 30, 60, 90, 100]


class TestScalarEventAxisLift:
    """The scalar engine's record loop walks record intervals (and
    batches the fully-absorbed tail); the oracle must stay
    byte-identical to the historical per-event loop."""

    PARAMS = ModelParameters(core_size=7, spare_max=7, k=1, mu=0.25, d=0.9)

    @staticmethod
    def _reference_run(simulation, n_events: int, record_every: int):
        """The pre-lift per-event loop, verbatim (the oracle's oracle)."""
        rng = simulation._rng
        n = simulation._n
        events_axis = [0]
        safe = [simulation._n_safe / n]
        polluted = [simulation._n_polluted / n]
        for event in range(1, n_events + 1):
            index = int(rng.integers(0, n))
            if not simulation._absorbed[index]:
                simulation._apply_event(index)
            if event % record_every == 0 or event == n_events:
                events_axis.append(event)
                safe.append(simulation._n_safe / n)
                polluted.append(simulation._n_polluted / n)
        return (
            np.asarray(events_axis),
            np.asarray(safe),
            np.asarray(polluted),
        )

    @pytest.mark.parametrize(
        ("record_every", "n_events"),
        [(1, 400), (7, 1000), (100, 20000), (10**9, 777)],
    )
    def test_byte_identical_to_per_event_loop(self, record_every, n_events):
        from repro.simulation.overlay_sim import _ScalarCompetingClusters

        for seed in (0, 7, 123):
            reference = _ScalarCompetingClusters(
                self.PARAMS, 30, np.random.default_rng(seed)
            )
            lifted = _ScalarCompetingClusters(
                self.PARAMS, 30, np.random.default_rng(seed)
            )
            events, safe, polluted = self._reference_run(
                reference, n_events, record_every
            )
            series = lifted.run(n_events, record_every=record_every)
            assert np.array_equal(events, series.events)
            assert np.array_equal(safe, series.safe_fraction)
            assert np.array_equal(polluted, series.polluted_fraction)
            # The RNG streams stayed aligned through the batched tail.
            assert (
                reference._rng.random() == lifted._rng.random()
            ), "generator state diverged"

    def test_long_horizon_flatlines_after_full_absorption(self, rng):
        # n=10 at 20k events absorbs the whole population early; the
        # tail must keep the recording contract (multiples + final).
        simulation = CompetingClustersSimulation(
            ModelParameters(mu=0.1, d=0.5), 10, rng, engine="scalar"
        )
        series = simulation.run(20000, record_every=3000)
        assert list(series.events) == [
            0, 3000, 6000, 9000, 12000, 15000, 18000, 20000,
        ]
        assert series.safe_fraction[-1] == 0.0
        assert series.polluted_fraction[-1] == 0.0


class TestAgentOverlay:
    def build(self, seed=13, mu=0.2, adversarial=True, **kwargs):
        params = ModelParameters(core_size=4, spare_max=4, k=1, mu=mu, d=0.8)
        adversary = StrongAdversary(params) if adversarial else None
        return AgentOverlaySimulation(
            OverlayConfig(model=params, id_bits=14, key_bits=32),
            np.random.default_rng(seed),
            adversary=adversary,
            **kwargs,
        )

    def test_bootstrap_honest_by_default(self):
        simulation = self.build()
        simulation.bootstrap(40)
        assert simulation.overlay.polluted_fraction() == 0.0
        assert all(not p.malicious for p in simulation.overlay.peers)

    def test_bootstrap_contaminated_option(self):
        simulation = self.build(mu=0.5)
        simulation.bootstrap(60, honest_only=False)
        assert any(p.malicious for p in simulation.overlay.peers)

    def test_run_produces_snapshots(self):
        simulation = self.build()
        simulation.bootstrap(40)
        result = simulation.run(30.0, sample_every=10.0)
        assert len(result.snapshots) >= 4
        assert result.peak_polluted_fraction >= result.final_polluted_fraction - 1e-9
        assert "join" in result.operations

    def test_invariants_hold_after_run(self):
        simulation = self.build(seed=29)
        simulation.bootstrap(60)
        simulation.run(40.0, sample_every=10.0)
        simulation.overlay.check_invariants()

    def test_universe_bound_caps_malicious_fraction(self):
        simulation = self.build(mu=0.2, events_per_unit=3)
        simulation.bootstrap(50)
        simulation.run(60.0, sample_every=20.0)
        peers = simulation.overlay.peers
        fraction = sum(p.malicious for p in peers) / len(peers)
        # The bound gates *arrivals* at mu; honest attrition (malicious
        # peers suppress their own leaves) can still drift the standing
        # fraction modestly past mu before the gate pulls it back.
        assert fraction <= 0.45

    def test_unbounded_universe_can_drift(self):
        bounded = self.build(mu=0.3, events_per_unit=3)
        unbounded = self.build(
            mu=0.3, events_per_unit=3, enforce_universe_bound=False
        )
        for simulation in (bounded, unbounded):
            simulation.bootstrap(40)
            simulation.run(80.0, sample_every=40.0)

        def malicious_fraction(sim):
            peers = sim.overlay.peers
            return sum(p.malicious for p in peers) / len(peers)

        assert malicious_fraction(unbounded) >= malicious_fraction(bounded) - 0.05

    def test_collect_states_option(self):
        simulation = self.build()
        simulation.bootstrap(30)
        result = simulation.run(10.0, sample_every=5.0, collect_states=True)
        assert result.snapshots[-1].states

    def test_events_per_unit_validated(self):
        with pytest.raises(ValueError):
            self.build(events_per_unit=0)


class TestIncrementalMaliciousCounter:
    def build(self, seed=13, mu=0.3):
        params = ModelParameters(core_size=4, spare_max=4, k=1, mu=mu, d=0.8)
        return AgentOverlaySimulation(
            OverlayConfig(model=params, id_bits=14, key_bits=32),
            np.random.default_rng(seed),
            adversary=StrongAdversary(params),
        )

    def test_counter_tracks_membership_through_churn(self):
        """The O(1) malicious fraction stays in sync with a full scan
        across joins, leaves, Property-1 expiries and Rule-1 sweeps."""
        simulation = self.build()
        simulation.bootstrap(30, honest_only=False)
        overlay = simulation.overlay
        for _ in range(25):
            simulation._churn_tick()
            scanned = sum(1 for p in overlay.peers if p.malicious)
            assert overlay.n_malicious == scanned
            expected = scanned / overlay.n_peers if overlay.n_peers else 0.0
            assert overlay.malicious_fraction() == pytest.approx(expected)
        overlay.check_invariants()

    def test_fraction_empty_overlay(self):
        simulation = self.build()
        assert simulation.overlay.malicious_fraction() == 0.0

    def test_universe_bound_still_enforced(self):
        simulation = self.build(mu=0.25)
        simulation.bootstrap(40)
        simulation.run(60.0, sample_every=30.0)
        assert simulation.overlay.malicious_fraction() <= 0.45
