"""Unit tests for Relations (5), (6), (9) at cluster level."""

import numpy as np
import pytest

from repro.core.absorption import (
    absorbing_analysis,
    absorption_probabilities,
    cluster_fate,
    expected_steps_to_absorption,
    expected_time_polluted,
    expected_time_safe,
    sojourn_analysis,
)
from repro.core.initial import delta_distribution, resolve_initial
from repro.core.matrix import ClusterChain
from repro.core.parameters import ModelParameters


@pytest.fixture(scope="module")
def clean_chain():
    return ClusterChain(ModelParameters(mu=0.0, d=0.0))


class TestFailureFreeAnchors:
    """mu = 0 collapses the chain to a +-1 random walk on the spare size."""

    def test_expected_safe_time_is_s0_times_rest(self, clean_chain):
        initial = delta_distribution(clean_chain)
        # s0 (Delta - s0) = 3 * 4 = 12 = floor(Delta^2 / 4).
        assert expected_time_safe(clean_chain, initial) == pytest.approx(12.0)

    def test_no_polluted_time(self, clean_chain):
        initial = delta_distribution(clean_chain)
        assert expected_time_polluted(clean_chain, initial) == pytest.approx(
            0.0, abs=1e-12
        )

    def test_absorption_odds_are_walk_exit_probabilities(self, clean_chain):
        initial = delta_distribution(clean_chain)
        probabilities = absorption_probabilities(clean_chain, initial)
        assert probabilities["safe-merge"] == pytest.approx(4.0 / 7.0)
        assert probabilities["safe-split"] == pytest.approx(3.0 / 7.0)
        assert probabilities["polluted-merge"] == pytest.approx(0.0, abs=1e-15)

    def test_walk_anchor_from_other_start(self, clean_chain):
        initial = resolve_initial(clean_chain, (5, 0, 0))
        assert expected_time_safe(clean_chain, initial) == pytest.approx(10.0)
        probabilities = absorption_probabilities(clean_chain, initial)
        assert probabilities["safe-merge"] == pytest.approx(2.0 / 7.0)

    def test_total_steps_equals_sum_of_subset_times(self, clean_chain):
        initial = delta_distribution(clean_chain)
        total = expected_steps_to_absorption(clean_chain, initial)
        assert total == pytest.approx(12.0)


class TestAdversarialPoint:
    def test_times_are_positive(self, attack_chain):
        initial = delta_distribution(attack_chain)
        assert expected_time_safe(attack_chain, initial) > 0
        assert expected_time_polluted(attack_chain, initial) > 0

    def test_probabilities_sum_to_one(self, attack_chain):
        initial = delta_distribution(attack_chain)
        probabilities = absorption_probabilities(attack_chain, initial)
        assert sum(probabilities.values()) == pytest.approx(1.0)

    def test_total_time_decomposition(self, attack_chain):
        initial = delta_distribution(attack_chain)
        total = expected_steps_to_absorption(attack_chain, initial)
        parts = expected_time_safe(attack_chain, initial) + expected_time_polluted(
            attack_chain, initial
        )
        assert total == pytest.approx(parts, rel=1e-9)

    def test_cluster_fate_consistency(self, attack_chain):
        initial = delta_distribution(attack_chain)
        fate = cluster_fate(attack_chain, initial)
        assert fate.expected_lifetime == pytest.approx(
            expected_steps_to_absorption(attack_chain, initial), rel=1e-9
        )
        assert fate.p_polluted_absorption == fate.p_polluted_merge
        record = fate.as_dict()
        assert set(record) == {
            "E(T_S)",
            "E(T_P)",
            "p(safe-merge)",
            "p(safe-split)",
            "p(polluted-merge)",
        }

    def test_beta_start_is_worse_than_delta(self, attack_chain):
        delta_initial = resolve_initial(attack_chain, "delta")
        beta_initial = resolve_initial(attack_chain, "beta")
        assert expected_time_polluted(
            attack_chain, beta_initial
        ) > expected_time_polluted(attack_chain, delta_initial)

    def test_sojourn_analysis_agrees_with_absorbing_analysis(self, attack_chain):
        initial = delta_distribution(attack_chain)
        censored = sojourn_analysis(attack_chain, initial)
        fundamental = absorbing_analysis(attack_chain, initial)
        total_censored = (
            censored.expected_total_time_s() + censored.expected_total_time_p()
        )
        assert total_censored == pytest.approx(
            fundamental.expected_steps_to_absorption(), rel=1e-9
        )
