"""Sojourn times of a Markov chain in a partition of its transient states.

Implements, for a chain whose transient states are split into two subsets
``S`` and ``P`` (and which eventually reaches some closed class), the
closed forms used by the paper:

* total time spent in ``S`` / ``P`` before absorption
  (Sericola 1990; paper Relations (5) and (6)),
* the expected duration of the ``n``-th sojourn in each subset
  (Sericola & Rubino 1989; paper Relations (7) and (8)).

Notation follows the paper.  With the transition matrix partitioned as::

        M = [ M_S   M_SP  ... ]
            [ M_PS  M_P   ... ]

the censored ingredients are::

    v = alpha_S + alpha_P (I - M_P)^{-1} M_PS
    R = M_S + M_SP (I - M_P)^{-1} M_PS
    w = alpha_P + alpha_S (I - M_S)^{-1} M_SP
    Q = M_P + M_PS (I - M_S)^{-1} M_SP
    G = (I - M_S)^{-1} M_SP (I - M_P)^{-1} M_PS
    H = (I - M_P)^{-1} M_PS (I - M_S)^{-1} M_SP

and the results read::

    E(T_S)    = v (I - R)^{-1} 1          E(T_P)    = w (I - Q)^{-1} 1
    E(T_S,n)  = v G^{n-1} (I - M_S)^{-1} 1
    E(T_P,n)  = w H^{n-1} (I - M_P)^{-1} 1
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.markov.linalg import (
    MarkovNumericsError,
    as_square_array,
    solve_fundamental,
    substochastic_check,
)


@dataclass(frozen=True)
class TwoSubsetSojourn:
    """Sojourn-time analysis for a two-subset transient partition.

    Parameters
    ----------
    block_ss, block_sp, block_ps, block_pp:
        The four transient blocks ``M_S``, ``M_SP``, ``M_PS``, ``M_P``.
    initial_s, initial_p:
        Initial probability mass over the states of ``S`` and ``P``.
    """

    block_ss: np.ndarray
    block_sp: np.ndarray
    block_ps: np.ndarray
    block_pp: np.ndarray
    initial_s: np.ndarray
    initial_p: np.ndarray
    _cache: dict = field(init=False, repr=False, default_factory=dict)

    def __post_init__(self) -> None:
        m_s = as_square_array(self.block_ss, name="M_S")
        m_p = as_square_array(self.block_pp, name="M_P")
        m_sp = np.asarray(self.block_sp, dtype=float)
        m_ps = np.asarray(self.block_ps, dtype=float)
        if m_sp.shape != (m_s.shape[0], m_p.shape[0]):
            raise MarkovNumericsError(
                f"M_SP has shape {m_sp.shape}, expected "
                f"({m_s.shape[0]}, {m_p.shape[0]})"
            )
        if m_ps.shape != (m_p.shape[0], m_s.shape[0]):
            raise MarkovNumericsError(
                f"M_PS has shape {m_ps.shape}, expected "
                f"({m_p.shape[0]}, {m_s.shape[0]})"
            )
        substochastic_check(m_s)
        substochastic_check(m_p)
        alpha_s = np.asarray(self.initial_s, dtype=float)
        alpha_p = np.asarray(self.initial_p, dtype=float)
        if alpha_s.shape != (m_s.shape[0],):
            raise MarkovNumericsError("initial_s has the wrong length")
        if alpha_p.shape != (m_p.shape[0],):
            raise MarkovNumericsError("initial_p has the wrong length")
        object.__setattr__(self, "block_ss", m_s)
        object.__setattr__(self, "block_sp", m_sp)
        object.__setattr__(self, "block_ps", m_ps)
        object.__setattr__(self, "block_pp", m_p)
        object.__setattr__(self, "initial_s", alpha_s)
        object.__setattr__(self, "initial_p", alpha_p)

    # -- censored ingredients ------------------------------------------

    def _solve_s(self, rhs: np.ndarray) -> np.ndarray:
        """Return ``(I - M_S)^{-1} rhs`` (cached factorization-free)."""
        return solve_fundamental(self.block_ss, rhs)

    def _solve_p(self, rhs: np.ndarray) -> np.ndarray:
        """Return ``(I - M_P)^{-1} rhs``."""
        return solve_fundamental(self.block_pp, rhs)

    def _subset_p_unreachable(self) -> bool:
        """True when ``P`` carries no initial mass and no inbound flow.

        Degenerate decompositions (e.g. the cluster model at mu = 0,
        where safe states can never produce a malicious core) may leave
        ``M_P`` with invariant subsets; skipping the solve is then both
        correct (the terms are multiplied by zero) and necessary
        (``I - M_P`` can be singular).
        """
        return not self.initial_p.any() and not self.block_sp.any()

    @property
    def v(self) -> np.ndarray:
        """Entry law of the first sojourn in ``S``:
        ``v = alpha_S + alpha_P (I - M_P)^{-1} M_PS``."""
        if "v" not in self._cache:
            if not self.initial_p.any():
                self._cache["v"] = self.initial_s.copy()
            else:
                lifted = self._solve_p(self.block_ps)
                self._cache["v"] = self.initial_s + self.initial_p @ lifted
        return self._cache["v"]

    @property
    def w(self) -> np.ndarray:
        """Entry law of the first sojourn in ``P``:
        ``w = alpha_P + alpha_S (I - M_S)^{-1} M_SP``."""
        if "w" not in self._cache:
            if not self.block_sp.any():
                self._cache["w"] = self.initial_p.copy()
            else:
                lifted = self._solve_s(self.block_sp)
                self._cache["w"] = self.initial_p + self.initial_s @ lifted
        return self._cache["w"]

    @property
    def censored_s(self) -> np.ndarray:
        """``R = M_S + M_SP (I - M_P)^{-1} M_PS`` — the chain watched
        only while in ``S`` (excursions through ``P`` collapsed)."""
        if "R" not in self._cache:
            if not self.block_sp.any():
                self._cache["R"] = self.block_ss.copy()
            else:
                lifted = self._solve_p(self.block_ps)
                self._cache["R"] = self.block_ss + self.block_sp @ lifted
        return self._cache["R"]

    @property
    def censored_p(self) -> np.ndarray:
        """``Q = M_P + M_PS (I - M_S)^{-1} M_SP``."""
        if "Q" not in self._cache:
            if not self.block_ps.any():
                self._cache["Q"] = self.block_pp.copy()
            else:
                lifted = self._solve_s(self.block_sp)
                self._cache["Q"] = self.block_pp + self.block_ps @ lifted
        return self._cache["Q"]

    @property
    def return_kernel_s(self) -> np.ndarray:
        """``G = (I - M_S)^{-1} M_SP (I - M_P)^{-1} M_PS``: law of the
        entry state of the next sojourn in ``S`` given the current one."""
        if "G" not in self._cache:
            if not self.block_sp.any() or not self.block_ps.any():
                self._cache["G"] = np.zeros_like(self.block_ss)
            else:
                inner = self._solve_p(self.block_ps)
                self._cache["G"] = self._solve_s(self.block_sp @ inner)
        return self._cache["G"]

    @property
    def return_kernel_p(self) -> np.ndarray:
        """``H = (I - M_P)^{-1} M_PS (I - M_S)^{-1} M_SP``."""
        if "H" not in self._cache:
            if not self.block_sp.any() or not self.block_ps.any():
                self._cache["H"] = np.zeros_like(self.block_pp)
            else:
                inner = self._solve_s(self.block_sp)
                self._cache["H"] = self._solve_p(self.block_ps @ inner)
        return self._cache["H"]

    # -- total sojourn times (Relations (5) and (6)) --------------------

    def expected_total_time_s(self) -> float:
        """``E(T_S) = v (I - R)^{-1} 1`` — Relation (5)."""
        ones = np.ones(self.block_ss.shape[0])
        return float(self.v @ solve_fundamental(self.censored_s, ones))

    def expected_total_time_p(self) -> float:
        """``E(T_P) = w (I - Q)^{-1} 1`` — Relation (6)."""
        if not self.w.any():
            # P is never entered; skip a solve that may be singular
            # when P contains invariant (unreachable) subsets.
            return 0.0
        ones = np.ones(self.block_pp.shape[0])
        return float(self.w @ solve_fundamental(self.censored_p, ones))

    # -- successive sojourn times (Relations (7) and (8)) ---------------

    def expected_sojourn_s(self, n: int) -> float:
        """``E(T_S,n) = v G^{n-1} (I - M_S)^{-1} 1`` — Relation (7)."""
        if n < 1:
            raise ValueError(f"sojourn index must be >= 1, got {n}")
        ones = np.ones(self.block_ss.shape[0])
        per_visit = self._solve_s(ones)
        entry = self.v.copy()
        for _ in range(n - 1):
            entry = entry @ self.return_kernel_s
        return float(entry @ per_visit)

    def expected_sojourn_p(self, n: int) -> float:
        """``E(T_P,n) = w H^{n-1} (I - M_P)^{-1} 1`` — Relation (8)."""
        if n < 1:
            raise ValueError(f"sojourn index must be >= 1, got {n}")
        if not self.w.any():
            return 0.0
        ones = np.ones(self.block_pp.shape[0])
        per_visit = self._solve_p(ones)
        entry = self.w.copy()
        for _ in range(n - 1):
            entry = entry @ self.return_kernel_p
        return float(entry @ per_visit)

    def expected_sojourns_s(self, count: int) -> list[float]:
        """First ``count`` values of ``E(T_S,n)`` computed incrementally."""
        ones = np.ones(self.block_ss.shape[0])
        per_visit = self._solve_s(ones)
        entry = self.v.copy()
        values = []
        for _ in range(count):
            values.append(float(entry @ per_visit))
            entry = entry @ self.return_kernel_s
        return values

    def expected_sojourns_p(self, count: int) -> list[float]:
        """First ``count`` values of ``E(T_P,n)`` computed incrementally."""
        if not self.w.any():
            return [0.0] * count
        ones = np.ones(self.block_pp.shape[0])
        per_visit = self._solve_p(ones)
        entry = self.w.copy()
        values = []
        for _ in range(count):
            values.append(float(entry @ per_visit))
            entry = entry @ self.return_kernel_p
        return values

    # -- sojourn counts --------------------------------------------------

    def probability_reaches_sojourn_s(self, n: int) -> float:
        """Probability that an ``n``-th sojourn in ``S`` takes place."""
        if n < 1:
            raise ValueError(f"sojourn index must be >= 1, got {n}")
        entry = self.v.copy()
        for _ in range(n - 1):
            entry = entry @ self.return_kernel_s
        return float(entry.sum())

    def probability_reaches_sojourn_p(self, n: int) -> float:
        """Probability that an ``n``-th sojourn in ``P`` takes place."""
        if n < 1:
            raise ValueError(f"sojourn index must be >= 1, got {n}")
        entry = self.w.copy()
        for _ in range(n - 1):
            entry = entry @ self.return_kernel_p
        return float(entry.sum())

    def expected_number_of_sojourns_s(self) -> float:
        """Expected count of distinct sojourns in ``S``:
        ``sum_n v G^{n-1} 1 = v (I - G)^{-1} 1``."""
        ones = np.ones(self.block_ss.shape[0])
        return float(self.v @ solve_fundamental(self.return_kernel_s, ones))

    def expected_number_of_sojourns_p(self) -> float:
        """Expected count of distinct sojourns in ``P``."""
        ones = np.ones(self.block_pp.shape[0])
        return float(self.w @ solve_fundamental(self.return_kernel_p, ones))

    # -- distribution-level results (Sericola 1990) -----------------------

    def total_time_survival_s(self, horizon: int) -> np.ndarray:
        """``P{T_S > n}`` for ``n = 0 .. horizon``.

        The censored chain ``R`` watches the process only while in
        ``S``; surviving ``n`` censored steps is exactly spending more
        than ``n`` units in ``S``: ``P{T_S > n} = v R^n 1``.
        """
        return _censored_survival(self.v, self.censored_s, horizon)

    def total_time_survival_p(self, horizon: int) -> np.ndarray:
        """``P{T_P > n} = w Q^n 1``."""
        return _censored_survival(self.w, self.censored_p, horizon)

    def total_time_pmf_s(self, horizon: int) -> np.ndarray:
        """``P{T_S = n}`` for ``n = 0 .. horizon`` (truncated law)."""
        survival = self.total_time_survival_s(horizon)
        return _survival_to_pmf(survival)

    def total_time_pmf_p(self, horizon: int) -> np.ndarray:
        """``P{T_P = n}`` for ``n = 0 .. horizon`` (truncated law)."""
        survival = self.total_time_survival_p(horizon)
        return _survival_to_pmf(survival)

    def sojourn_survival_s(self, n: int, horizon: int) -> np.ndarray:
        """``P{T_S,n > m}`` for ``m = 0 .. horizon``.

        Defective in general: the mass at ``m = 0`` already misses the
        probability that an ``n``-th sojourn never takes place.
        """
        if n < 1:
            raise ValueError(f"sojourn index must be >= 1, got {n}")
        entry = self.v.copy()
        for _ in range(n - 1):
            entry = entry @ self.return_kernel_s
        return _censored_survival(entry, self.block_ss, horizon)

    def sojourn_survival_p(self, n: int, horizon: int) -> np.ndarray:
        """``P{T_P,n > m}`` for ``m = 0 .. horizon``."""
        if n < 1:
            raise ValueError(f"sojourn index must be >= 1, got {n}")
        entry = self.w.copy()
        for _ in range(n - 1):
            entry = entry @ self.return_kernel_p
        return _censored_survival(entry, self.block_pp, horizon)


def _censored_survival(
    entry: np.ndarray, kernel: np.ndarray, horizon: int
) -> np.ndarray:
    """``[entry kernel^n 1]_{n=0..horizon}`` -- survival of a censored
    (possibly defective) phase-type law."""
    if horizon < 0:
        raise ValueError(f"horizon must be >= 0, got {horizon}")
    ones = np.ones(kernel.shape[0])
    law = np.asarray(entry, dtype=float).copy()
    survival = np.empty(horizon + 1)
    for n in range(horizon + 1):
        survival[n] = float(law @ ones)
        law = law @ kernel
    return survival


def _survival_to_pmf(survival: np.ndarray) -> np.ndarray:
    """Convert ``P{T > n}`` samples to ``P{T = n}``.

    ``P{T = 0} = 1 - P{T > 0}`` and ``P{T = n} = P{T > n-1} - P{T > n}``.
    """
    pmf = np.empty_like(survival)
    pmf[0] = 1.0 - survival[0]
    pmf[1:] = survival[:-1] - survival[1:]
    return pmf
