"""High-level facade over the analytical cluster model.

:class:`ClusterModel` is the main entry point of the public API: it
builds the chain lazily, resolves initial-distribution specifications
and exposes every quantity the paper reports with one method each.

Example
-------
>>> from repro import ClusterModel, ModelParameters
>>> model = ClusterModel(ModelParameters(mu=0.2, d=0.9, k=1))
>>> round(model.expected_time_safe("delta"), 2)        # doctest: +SKIP
11.89
>>> model.absorption_probabilities("delta")            # doctest: +SKIP
{'safe-merge': ..., 'safe-split': ..., 'polluted-merge': ...}
"""

from __future__ import annotations

import numpy as np

from repro.core import absorption as _absorption
from repro.core import sojourn as _sojourn
from repro.core.absorption import ClusterFate
from repro.core.initial import resolve_initial
from repro.core.matrix import ClusterChain
from repro.core.parameters import ModelParameters
from repro.core.sojourn import SojournProfile
from repro.core.statespace import State, StateSpace
from repro.markov.chain import MarkovChain

#: Accepted forms of an initial-distribution specification.
InitialSpec = str | State | tuple[int, int, int] | np.ndarray


class ClusterModel:
    """Analytical model of a single cluster under targeted attack."""

    def __init__(self, params: ModelParameters | None = None) -> None:
        self._params = params if params is not None else ModelParameters()
        self._chain: ClusterChain | None = None

    # -- construction ---------------------------------------------------------

    @property
    def params(self) -> ModelParameters:
        """The parameter record."""
        return self._params

    @property
    def chain(self) -> ClusterChain:
        """The assembled chain (built on first access)."""
        if self._chain is None:
            self._chain = ClusterChain(self._params)
        return self._chain

    @property
    def space(self) -> StateSpace:
        """Enumerated state space."""
        return self.chain.space

    def as_markov_chain(self) -> MarkovChain:
        """Labeled :class:`~repro.markov.chain.MarkovChain` view."""
        return self.chain.as_markov_chain()

    def with_overrides(self, **changes) -> "ClusterModel":
        """New model with some parameters replaced."""
        return ClusterModel(self._params.with_overrides(**changes))

    def _initial(self, initial) -> np.ndarray:
        return resolve_initial(self.chain, initial)

    # -- paper quantities ------------------------------------------------------

    def expected_time_safe(self, initial="delta") -> float:
        """``E(T_S^(k))`` -- Relation (5), Figure 3 / Table I."""
        return _absorption.expected_time_safe(self.chain, self._initial(initial))

    def expected_time_polluted(self, initial="delta") -> float:
        """``E(T_P^(k))`` -- Relation (6), Figure 3 / Table I."""
        return _absorption.expected_time_polluted(
            self.chain, self._initial(initial)
        )

    def expected_sojourn_safe(self, n: int, initial="delta") -> float:
        """``E(T_S,n)`` -- Relation (7), Table II."""
        return _sojourn.expected_sojourn_safe(
            self.chain, self._initial(initial), n
        )

    def expected_sojourn_polluted(self, n: int, initial="delta") -> float:
        """``E(T_P,n)`` -- Relation (8), Table II."""
        return _sojourn.expected_sojourn_polluted(
            self.chain, self._initial(initial), n
        )

    def sojourn_profile(self, initial="delta", depth: int = 2) -> SojournProfile:
        """Relations (5)-(8) bundled (Table II rows)."""
        return _sojourn.sojourn_profile(
            self.chain, self._initial(initial), depth
        )

    def absorption_probabilities(self, initial="delta") -> dict[str, float]:
        """``p(A_S^m), p(A_S^l), p(A_P^m)`` -- Relation (9), Figure 4."""
        return _absorption.absorption_probabilities(
            self.chain, self._initial(initial)
        )

    def cluster_fate(self, initial="delta") -> ClusterFate:
        """All absorption-related quantities in one record."""
        return _absorption.cluster_fate(self.chain, self._initial(initial))

    def expected_lifetime(self, initial="delta") -> float:
        """Expected number of events before merge/split absorption."""
        return _absorption.expected_steps_to_absorption(
            self.chain, self._initial(initial)
        )

    # -- transient behaviour -----------------------------------------------------

    def transient_law(self, initial="delta", n_steps: int = 0) -> np.ndarray:
        """Law over transient states after ``n_steps`` local transitions
        (sub-stochastic: missing mass has been absorbed)."""
        law = self._initial(initial)
        transient = self.chain.transient_matrix
        for _ in range(n_steps):
            law = law @ transient
        return law

    def pollution_probability_after(
        self, n_steps: int, initial="delta"
    ) -> float:
        """``P{X_n in P}`` after ``n_steps`` local transitions."""
        law = self.transient_law(initial, n_steps)
        return float(law @ self.chain.polluted_indicator())

    def survival_probability_after(
        self, n_steps: int, initial="delta"
    ) -> float:
        """Probability the cluster has not yet merged or split."""
        return float(self.transient_law(initial, n_steps).sum())

    # -- distribution-level extensions (see core.pollution_dynamics) -----

    def pollution_onset(self, initial="delta", horizon: int = 200):
        """Law of the time until the core first loses its quorum."""
        from repro.core.pollution_dynamics import pollution_onset

        return pollution_onset(self.chain, self._initial(initial), horizon)

    def safe_time_survival(self, horizon: int, initial="delta") -> np.ndarray:
        """``P{T_S > n}`` for ``n = 0 .. horizon``."""
        from repro.core.pollution_dynamics import safe_time_survival

        return safe_time_survival(self.chain, self._initial(initial), horizon)

    def polluted_time_survival(
        self, horizon: int, initial="delta"
    ) -> np.ndarray:
        """``P{T_P > n}`` for ``n = 0 .. horizon``."""
        from repro.core.pollution_dynamics import polluted_time_survival

        return polluted_time_survival(
            self.chain, self._initial(initial), horizon
        )
