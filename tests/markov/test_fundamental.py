"""Unit tests for the absorbing-chain analysis."""

import numpy as np
import pytest

from repro.markov.fundamental import AbsorbingAnalysis
from repro.markov.linalg import MarkovNumericsError


def gambler(p: float = 0.5) -> AbsorbingAnalysis:
    """Gambler's ruin on {0..4}: transient {1,2,3}, absorbing 0 and 4."""
    q = 1.0 - p
    transient = np.array(
        [
            [0.0, p, 0.0],
            [q, 0.0, p],
            [0.0, q, 0.0],
        ]
    )
    ruin = np.array([[q], [0.0], [0.0]])
    win = np.array([[0.0], [0.0], [p]])
    return AbsorbingAnalysis(
        transient_block=transient,
        absorbing_blocks=(("ruin", ruin), ("win", win)),
        initial=np.array([0.0, 1.0, 0.0]),
    )


class TestGamblersRuin:
    def test_fair_game_absorption_probabilities(self):
        analysis = gambler(0.5)
        probabilities = analysis.absorption_probabilities()
        assert np.isclose(probabilities["ruin"], 0.5)
        assert np.isclose(probabilities["win"], 0.5)

    def test_fair_game_expected_duration(self):
        # From the middle of {0..4}: E[steps] = i (N - i) = 2 * 2 = 4.
        assert np.isclose(gambler(0.5).expected_steps_to_absorption(), 4.0)

    def test_biased_game_favors_winner(self):
        probabilities = gambler(0.7).absorption_probabilities()
        assert probabilities["win"] > 0.8

    def test_probabilities_always_sum_to_one(self):
        for p in (0.2, 0.5, 0.9):
            probabilities = gambler(p).absorption_probabilities()
            assert np.isclose(sum(probabilities.values()), 1.0)

    def test_expected_steps_by_state_symmetry(self):
        steps = gambler(0.5).expected_steps_by_state()
        # i(N - i) for i = 1, 2, 3: [3, 4, 3].
        assert np.allclose(steps, [3.0, 4.0, 3.0])

    def test_expected_visits(self):
        visits = gambler(0.5).expected_visits()
        assert visits.sum() == pytest.approx(4.0)

    def test_absorption_distribution_concentrates_on_single_state(self):
        dist = gambler(0.5).absorption_distribution("win")
        assert dist.shape == (1,)
        assert np.isclose(dist[0], 0.5)

    def test_time_in_states_indicator(self):
        analysis = gambler(0.5)
        middle_only = np.array([0.0, 1.0, 0.0])
        everything = np.ones(3)
        assert analysis.time_in_states(middle_only) < analysis.time_in_states(
            everything
        )
        assert np.isclose(
            analysis.time_in_states(everything),
            analysis.expected_steps_to_absorption(),
        )


class TestValidation:
    def test_unknown_class_name(self):
        with pytest.raises(KeyError, match="unknown"):
            gambler().absorption_probability("draw")

    def test_rows_must_complete_to_one(self):
        with pytest.raises(MarkovNumericsError, match="sums to"):
            AbsorbingAnalysis(
                transient_block=np.array([[0.5]]),
                absorbing_blocks=(("a", np.array([[0.2]])),),
                initial=np.array([1.0]),
            )

    def test_initial_shape_checked(self):
        with pytest.raises(MarkovNumericsError, match="initial"):
            AbsorbingAnalysis(
                transient_block=np.array([[0.5]]),
                absorbing_blocks=(("a", np.array([[0.5]])),),
                initial=np.array([1.0, 0.0]),
            )

    def test_block_row_count_checked(self):
        with pytest.raises(MarkovNumericsError, match="rows"):
            AbsorbingAnalysis(
                transient_block=np.array([[0.5]]),
                absorbing_blocks=(("a", np.array([[0.5], [0.5]])),),
                initial=np.array([1.0]),
            )

    def test_indicator_shape_checked(self):
        with pytest.raises(MarkovNumericsError, match="indicator"):
            gambler().time_in_states(np.ones(4))
