"""Compaction correctness: the sharded ledger folds like the full one.

The crash-safety story of :meth:`ShardedLedger.compact` rests on one
invariant -- the fold is idempotent for full streams, so replaying
*snapshot + surviving shard tails* equals replaying every event ever
appended, no matter where compaction (or a crash inside it) lands in
the interleaving.  These tests prove exactly that:

* concrete unit cases (compact mid-lifecycle, compact twice, foreign
  appends racing the swap);
* a Hypothesis property: arbitrary event interleavings, with
  compactions injected at arbitrary positions (including compactions
  that die mid-swap via an injected ``EIO``), always replay equal to
  an uncompacted twin ledger fed the same events;
* a subprocess schedule that hard-kills (``os._exit``, SIGKILL
  semantics) a real coordinator **mid-compaction** -- after the
  snapshot publish, before the shard swap -- and shows the next
  coordinator run folds to the same state and finishes the sweep.
"""

import json
import os
import pathlib
import subprocess
import sys
import tempfile

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distributed import faults
from repro.distributed.faults import FaultPlan, FaultRule
from repro.distributed.ledger import (
    LedgerState,
    ShardedLedger,
    SweepLedger,
    fold_record,
    open_ledger,
    replay_ledger,
)
from repro.scenario.spec import ScenarioSpec
from repro.core.parameters import ModelParameters

PARAMS = ModelParameters(core_size=5, spare_max=5, k=1, mu=0.2, d=0.9)


def spec_for(name: str) -> ScenarioSpec:
    return ScenarioSpec(
        name=name, params=PARAMS, engine="batch", runs=20, seed=11
    )


# -- strategies ---------------------------------------------------------------

#: Few keys/sweeps so interleavings collide on them.
KEYS = [f"{i:02d}" + "a" * 62 for i in range(4)]
SWEEPS = ["sweep-alpha", "sweep-beta"]

ledger_keys = st.sampled_from(KEYS)
workers = st.sampled_from(["w0", "w1"])
sweeps = st.sampled_from(SWEEPS)
ledger_events = st.lists(
    st.one_of(
        st.tuples(st.just("scheduled"), ledger_keys),
        st.tuples(st.just("claimed"), ledger_keys, workers),
        st.tuples(st.just("requeued"), ledger_keys, workers),
        st.tuples(st.just("done"), ledger_keys, workers),
        st.tuples(st.just("failed"), ledger_keys, workers),
        st.tuples(
            st.just("submitted"),
            sweeps,
            st.lists(ledger_keys, min_size=1, max_size=4, unique=True),
        ),
        st.tuples(st.just("cancelled"), sweeps),
    ),
    max_size=25,
)


def apply_event(ledger: SweepLedger, event: tuple) -> None:
    """Feed one abstract event through the real append API."""
    kind = event[0]
    if kind == "scheduled":
        ledger._append(
            {
                "event": "scheduled",
                "key": event[1],
                "spec": {"name": event[1]},
            }
        )
    elif kind == "claimed":
        ledger.record_claimed(event[1], event[2])
    elif kind == "requeued":
        ledger.record_requeued(event[1], event[2])
    elif kind == "done":
        ledger.record_done(event[1], event[2])
    elif kind == "failed":
        ledger.record_failed(event[1], event[2], "boom")
    elif kind == "submitted":
        ledger.record_submitted(event[1], event[2], name=event[1])
    elif kind == "cancelled":
        ledger.record_cancelled(event[1])
    else:  # pragma: no cover - strategy bug
        raise AssertionError(kind)


class TestCompactionUnit:
    def test_compacted_replay_equals_full_replay(self, tmp_path):
        root = tmp_path / "ledger"
        twin = tmp_path / "twin"
        events = [
            ("submitted", "s1", KEYS[:3]),
            ("scheduled", KEYS[0]),
            ("scheduled", KEYS[1]),
            ("claimed", KEYS[0], "w0"),
            ("done", KEYS[0], "w0"),
        ]
        tail = [
            ("claimed", KEYS[1], "w1"),
            ("failed", KEYS[1], "w1"),
            ("scheduled", KEYS[2]),
            ("cancelled", "s1"),
        ]
        with ShardedLedger(root) as sharded, ShardedLedger(twin) as plain:
            for event in events:
                apply_event(sharded, event)
                apply_event(plain, event)
            stats = sharded.compact()
            assert stats["events_folded"] == len(events)
            for event in tail:
                apply_event(sharded, event)
                apply_event(plain, event)
        assert replay_ledger(root) == replay_ledger(twin)
        assert (root / "snapshot.json").exists()

    def test_compaction_is_idempotent(self, tmp_path):
        root = tmp_path / "ledger"
        with ShardedLedger(root) as ledger:
            ledger.record_submitted("s1", KEYS[:2], name="grid")
            for key in KEYS[:2]:
                apply_event(ledger, ("scheduled", key))
                ledger.record_done(key, "w0")
            before = replay_ledger(root)
            ledger.compact()
            ledger.compact()  # nothing new to fold: harmless
        after = replay_ledger(root)
        assert after == before
        meta = json.loads((root / "compaction-meta.json").read_text())
        assert meta["generation"] == 2

    def test_foreign_append_during_swap_survives(
        self, tmp_path, monkeypatch
    ):
        """A record appended by *another writer* between the fold and
        the shard deletions must survive: compact only deletes shards
        whose size is unchanged since it folded them."""
        root = tmp_path / "ledger"
        with ShardedLedger(root) as ledger:
            apply_event(ledger, ("scheduled", KEYS[0]))
            ledger.record_done(KEYS[0], "w0")

            foreign = ShardedLedger(root)  # the racing writer
            original = faults.inject

            def racing_inject(site, context=""):
                # Hook the swap point for a deterministic race.
                if site == "ledger.compact" and context == "swap":
                    apply_event(foreign, ("scheduled", KEYS[1]))
                return original(site, context)

            monkeypatch.setattr(faults, "inject", racing_inject)
            try:
                ledger.compact()
            finally:
                foreign.close()
        state = replay_ledger(root)
        assert KEYS[0] in state.done
        assert KEYS[1] in state.scheduled  # the racing record lives

    def test_tail_and_stats_reporting(self, tmp_path):
        root = tmp_path / "ledger"
        with ShardedLedger(root) as ledger:
            assert ledger.last_compaction() is None
            ledger.record_submitted("s1", KEYS[:2], name="grid")
            apply_event(ledger, ("scheduled", KEYS[0]))
            assert ledger.tail_size() > 0
            assert len(ledger.shard_stats()) >= 1
            ledger.compact()
            assert ledger.tail_size() == 0
            stamp = ledger.last_compaction()
            assert stamp is not None and stamp["generation"] == 1


class TestCompactionProperty:
    @settings(deadline=None, max_examples=60)
    @given(events=ledger_events, data=st.data())
    def test_any_interleaving_with_compactions_replays_equal(
        self, events, data
    ):
        """snapshot + compacted tail == full replay, at every split.

        Compaction points are drawn as positions in the event stream;
        each one may additionally be scripted to *die mid-swap* (an
        injected EIO after the snapshot publish, before the shard
        deletions) -- the torn intermediate state must still replay
        equal, and so must the ledger after the next successful
        compaction.
        """
        n_compactions = data.draw(
            st.integers(min_value=1, max_value=3), label="n_compactions"
        )
        positions = sorted(
            data.draw(
                st.lists(
                    st.integers(min_value=0, max_value=len(events)),
                    min_size=n_compactions,
                    max_size=n_compactions,
                ),
                label="positions",
            )
        )
        crashes = data.draw(
            st.lists(
                st.booleans(),
                min_size=n_compactions,
                max_size=n_compactions,
            ),
            label="crash_mid_swap",
        )
        reference = LedgerState()
        for event in events:
            fold_record_abstract(reference, event)

        def operative(state: LedgerState):
            """Everything the fabric acts on.  ``claims`` is excluded:
            it is post-crash diagnostics only, and a key whose events
            span shards (routed to a sweep's shard mid-lifecycle) can
            legitimately fold its claim markers in shard order rather
            than append order.  ``pending`` -- the field the queue is
            built from -- is asserted instead."""
            return (
                state.scheduled,
                state.done,
                state.failed,
                state.sweeps,
                state.cancelled,
                state.pending,
            )

        with tempfile.TemporaryDirectory() as scratch:
            root = pathlib.Path(scratch) / "ledger"
            twin = pathlib.Path(scratch) / "twin"
            with ShardedLedger(root) as sharded, ShardedLedger(
                twin
            ) as plain:
                cursor = 0
                for position, crash in zip(positions, crashes):
                    for event in events[cursor:position]:
                        apply_event(sharded, event)
                        apply_event(plain, event)
                    cursor = position
                    if crash:
                        faults.install(
                            FaultPlan(
                                [
                                    FaultRule(
                                        site="ledger.compact",
                                        action="eio",
                                        match="swap",
                                    )
                                ]
                            )
                        )
                        with pytest.raises(OSError):
                            sharded.compact()
                        faults.clear()
                        # The torn intermediate state already replays
                        # equal -- fold idempotence in action.
                        assert operative(replay_ledger(root)) == operative(
                            replay_ledger(twin)
                        )
                    else:
                        sharded.compact()
                for event in events[cursor:]:
                    apply_event(sharded, event)
                    apply_event(plain, event)
            final = replay_ledger(root)
            assert operative(final) == operative(replay_ledger(twin))
            assert operative(final) == operative(reference)


def fold_record_abstract(state: LedgerState, event: tuple) -> None:
    """Reference fold of the abstract events (mirrors fold_record)."""
    kind = event[0]
    if kind == "scheduled":
        state.scheduled.setdefault(event[1], {"name": event[1]})
    elif kind == "claimed":
        state.claims[event[1]] = event[2]
    elif kind == "requeued":
        state.claims.pop(event[1], None)
    elif kind == "done":
        state.done.add(event[1])
        state.claims.pop(event[1], None)
        state.failed.pop(event[1], None)
    elif kind == "failed":
        if event[1] not in state.done:
            state.failed[event[1]] = "boom"
        state.claims.pop(event[1], None)
    elif kind == "submitted":
        state.sweeps[event[1]] = tuple(event[2])
    elif kind == "cancelled":
        state.cancelled.add(event[1])


# -- SIGKILL mid-compaction, through a real coordinator -----------------------


def _env(extra=None) -> dict:
    src = str(pathlib.Path(__file__).resolve().parents[2] / "src")
    env = dict(os.environ)
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    env.pop(faults.ENV_PLAN, None)
    if extra:
        env.update(extra)
    return env


def _run_coordinator(spec, ledger, cache, plan=None):
    extra = {faults.ENV_PLAN: str(plan)} if plan is not None else None
    return subprocess.run(
        [
            sys.executable,
            "-m",
            "repro",
            "sweep-coordinator",
            str(spec),
            "--port",
            "0",
            "--ledger",
            str(ledger),
            "--cache-dir",
            str(cache),
            "--compact-threshold",
            "1",
        ],
        env=_env(extra),
        capture_output=True,
        text=True,
        timeout=120,
    )


class TestKillMidCompaction:
    def test_coordinator_killed_mid_swap_recovers_identically(
        self, tmp_path
    ):
        """Hard-kill a real coordinator between its snapshot publish
        and the shard swap; the restart folds the doubled stream to
        the same state and completes the (already-done) sweep."""
        document = {
            "name": "compaction-kill",
            "engine": "batch",
            "runs": 20,
            "seed": 31,
            "params": {
                "core_size": 5,
                "spare_max": 5,
                "k": 1,
                "mu": 0.2,
                "d": 0.9,
            },
            "sweep": {"params.mu": [0.1, 0.2, 0.3]},
        }
        from repro.scenario.spec import load_scenario_document

        specs = load_scenario_document(document).expand()
        spec_file = tmp_path / "grid.json"
        spec_file.write_text(json.dumps(document))
        ledger = tmp_path / "ledger"
        cache = tmp_path / "cache"

        # Pre-populate: every point already swept into the cache and
        # ledgered done (the coordinator only trusts a ledgered done
        # whose result file exists), so it has nothing to execute --
        # the startup compaction is the only thing standing between it
        # and a clean exit.
        from repro.scenario.runner import SweepRunner

        SweepRunner(cache_dir=cache).sweep(specs)
        with open_ledger(ledger) as handle:
            assert isinstance(handle, ShardedLedger)
            handle.record_scheduled(specs)
            for spec in specs:
                handle.record_done(spec.key(), "preload")
        before = replay_ledger(ledger)
        shard_files = sorted(
            p.name for p in (ledger / "shards").glob("*.jsonl")
        )
        assert shard_files  # there is a tail to compact

        kill_plan = FaultPlan(
            [
                FaultRule(
                    site="ledger.compact", action="exit", match="swap"
                )
            ]
        ).save(tmp_path / "kill.json")

        killed = _run_coordinator(spec_file, ledger, cache, plan=kill_plan)
        assert killed.returncode == faults.DEFAULT_EXIT_CODE
        # Snapshot published, shards NOT yet deleted: the doubled
        # stream a crash leaves behind.
        assert (ledger / "snapshot.json").exists()
        assert sorted(
            p.name for p in (ledger / "shards").glob("*.jsonl")
        ) == shard_files
        assert replay_ledger(ledger) == before

        clean = _run_coordinator(spec_file, ledger, cache)
        assert clean.returncode == 0, clean.stdout + clean.stderr
        assert "sweep complete: 3/3 done" in clean.stdout
        assert replay_ledger(ledger) == before
        # This time the swap finished: the folded shards are gone.
        assert not sorted(
            p.name for p in (ledger / "shards").glob("*.jsonl")
        )
