"""m-bit identifier space, hashing and prefix distance (Section III).

Peers and data keys live in the same ``m``-bit space (the paper uses
``m = 128``).  Clusters carry binary-string *labels*; a peer belongs to
the unique cluster whose label is a prefix of its current identifier
(the PeerCube distance ``D``).
"""

from __future__ import annotations

import hashlib

from repro.overlay.errors import IdentifierError

#: Default identifier width in bits (the paper's ``m``).
DEFAULT_ID_BITS = 128


def digest_to_identifier(data: bytes, bits: int = DEFAULT_ID_BITS) -> int:
    """SHA-256 of ``data`` truncated to ``bits`` bits."""
    if bits < 1:
        raise IdentifierError(f"identifier width must be >= 1, got {bits}")
    digest = hashlib.sha256(data).digest()
    value = int.from_bytes(digest, "big")
    return value >> max(0, 256 - bits) if bits <= 256 else value

def initial_identifier(
    certificate_bytes: bytes, bits: int = DEFAULT_ID_BITS
) -> int:
    """``id0 = H(certificate fields)`` -- includes the creation date
    ``t0``, making identifiers unpredictable (Section III-D)."""
    return digest_to_identifier(b"id0|" + certificate_bytes, bits)


def incarnation_identifier(
    id0: int, incarnation: int, bits: int = DEFAULT_ID_BITS
) -> int:
    """``id = H(id0 x k)`` -- the identifier of incarnation ``k``."""
    if incarnation < 1:
        raise IdentifierError(
            f"incarnation numbers start at 1, got {incarnation}"
        )
    payload = f"{id0:x}|{incarnation:d}".encode()
    return digest_to_identifier(b"ik|" + payload, bits)


def to_bit_string(identifier: int, bits: int = DEFAULT_ID_BITS) -> str:
    """Zero-padded binary representation, most significant bit first."""
    if identifier < 0 or identifier >= (1 << bits):
        raise IdentifierError(
            f"identifier {identifier} outside [0, 2^{bits})"
        )
    return format(identifier, f"0{bits}b")


def has_prefix(identifier: int, label: str, bits: int = DEFAULT_ID_BITS) -> bool:
    """True when the cluster ``label`` is a prefix of ``identifier``.

    The empty label is a prefix of everything (single-cluster overlay).
    """
    validate_label(label, bits)
    if not label:
        return True
    return to_bit_string(identifier, bits).startswith(label)


def validate_label(label: str, bits: int = DEFAULT_ID_BITS) -> str:
    """Check a cluster label is a binary string shorter than ``bits``."""
    if len(label) >= bits:
        raise IdentifierError(
            f"label length {len(label)} must be < identifier width {bits}"
        )
    if any(ch not in "01" for ch in label):
        raise IdentifierError(f"label {label!r} is not a binary string")
    return label


def common_prefix_length(a: int, b: int, bits: int = DEFAULT_ID_BITS) -> int:
    """Length of the longest common prefix of two identifiers."""
    diff = (a ^ b) & ((1 << bits) - 1)
    if diff == 0:
        return bits
    return bits - diff.bit_length()


def xor_distance(a: int, b: int) -> int:
    """Kademlia-style XOR distance, used to pick the *closest* cluster
    among candidates (merge target selection)."""
    return a ^ b


def label_region_size(label: str, bits: int = DEFAULT_ID_BITS) -> int:
    """Number of identifiers covered by a label (``2^(bits-|label|)``).

    A merge doubles this quantity and a split halves it -- the identifier
    subspace stakes discussed in Section V-B.
    """
    validate_label(label, bits)
    return 1 << (bits - len(label))


def label_of_identifier_at_depth(
    identifier: int, depth: int, bits: int = DEFAULT_ID_BITS
) -> str:
    """The depth-``depth`` label containing ``identifier``."""
    if depth < 0 or depth >= bits:
        raise IdentifierError(f"depth {depth} outside [0, {bits})")
    return to_bit_string(identifier, bits)[:depth]
