"""Benchmark: distributed sweep scaling and result-serving throughput.

Two perf gates, two machine-readable records:

* ``BENCH_4.json`` -- the distributed-fabric acceptance gate: on a
  compute-bound grid (identical batch Monte-Carlo points differing
  only by seed, so work is perfectly balanced), a 2-worker localhost
  sweep must beat the serial :class:`~repro.scenario.runner
  .SweepRunner` by >= 1.7x inside the pure compute window (first
  assignment to last result; coordinator gang-start excludes the
  workers' interpreter boot, which measures the disk cache, not the
  fabric).  The record also carries ``repro serve`` throughput over
  the swept results (concurrent clients hammering ``/results/<key>``
  and ``/progress``).

* ``BENCH_5.json`` -- the pagination gate: ``/results?offset=&limit=``
  over a >= 10^4-point store must sustain :data:`MIN_PAGED_RPS` under
  concurrent clients.  This gates the *index sidecar*: the historical
  full-scan path re-parsed every stored payload per request, which at
  10^4 points is under ~2 req/s -- an order of magnitude below the
  gate -- so a regression back to scanning fails loudly.  The record
  also keeps the one-off costs honest: building the store and the
  cold first-request index fold are both timed.

The scaling gate is **hardware-aware**: two processes cannot beat one
on a single-core host, so when the CPU affinity mask offers < 2 cores
the gate flips to an *overhead* bound -- the distributed compute
window must stay within ``MAX_SINGLE_CORE_OVERHEAD`` of serial (the
fabric tax: framing, ledgering, atomic publishes).  The JSON record
always states the cores seen and which gate applied, so a committed
record is interpretable on its own.

``BENCH_SMOKE=1`` shrinks the grid so CI finishes in seconds; the perf
record is then labelled ``"smoke": true`` and must not be committed.
"""

import concurrent.futures
import json
import os
import pathlib
import subprocess
import sys
import threading
import time
import urllib.request

from repro.analysis.tables import render_table
from repro.core.parameters import ModelParameters
from repro.distributed.coordinator import SweepCoordinator
from repro.distributed.service import ResultsService
from repro.scenario.runner import SweepRunner
from repro.scenario.spec import ScenarioSpec, SweepSpec

SMOKE = bool(os.environ.get("BENCH_SMOKE"))

PARAMS = ModelParameters(core_size=7, spare_max=7, k=1, mu=0.25, d=0.9)
#: Monte-Carlo trajectories per grid point (the per-point compute).
POINT_RUNS = 100_000 if SMOKE else 400_000
#: Identical-cost points: the grid sweeps the seed axis only.
GRID_POINTS = 8 if SMOKE else 10
N_WORKERS = 2
#: Cores this process may schedule on (the workers inherit the mask).
CORES = len(os.sched_getaffinity(0)) if hasattr(os, "sched_getaffinity") else (
    os.cpu_count() or 1
)
#: The committed record must show >= 1.7x; the shrunken smoke grid
#: amortizes per-worker warmup over fewer, smaller points, so its CI
#: gate is correspondingly looser.
MIN_SPEEDUP = 1.4 if SMOKE else 1.7
#: Single-core fallback gate: the fabric's tax (framing, ledger
#: fsyncs, atomic publishes) must cost < 30% against serial even with
#: zero parallelism available.
MAX_SINGLE_CORE_OVERHEAD = 1.30
#: Requests fired at the service (split across concurrent clients).
SERVE_REQUESTS = 120 if SMOKE else 600
SERVE_CLIENTS = 8
MIN_SERVE_RPS = 10.0

#: Pagination gate: a store of this many synthetic points...
PAGE_STORE_POINTS = 2_000 if SMOKE else 10_000
#: ...served page by page...
PAGE_LIMIT = 100
PAGE_REQUESTS = 200 if SMOKE else 400
#: ...must sustain this.  The full-scan path this replaced parses
#: every payload per request (~2 req/s at 10^4 points); the index
#: sidecar serves a stat + slice (hundreds of req/s).
MIN_PAGED_RPS = 25.0


def grid() -> list[ScenarioSpec]:
    base = ScenarioSpec(
        name="dist-bench",
        params=PARAMS,
        engine="batch",
        runs=POINT_RUNS,
        seed=101,
    )
    return SweepSpec(
        base=base, axes=(("seed", tuple(range(101, 101 + GRID_POINTS))),)
    ).expand()


def _worker_env() -> dict[str, str]:
    src = str(pathlib.Path(__file__).resolve().parent.parent / "src")
    env = dict(os.environ)
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return env


def run_serial(specs, tmp: pathlib.Path) -> float:
    runner = SweepRunner(cache_dir=tmp / "serial")
    start = time.perf_counter()
    runner.sweep(specs)
    return time.perf_counter() - start


def run_distributed(specs, tmp: pathlib.Path) -> dict:
    coordinator = SweepCoordinator(
        specs,
        cache_dir=tmp / "dist",
        ledger_path=tmp / "ledger.jsonl",
        await_workers=N_WORKERS,
    )
    summary = {}

    def serve() -> None:
        summary.update(coordinator.run())

    thread = threading.Thread(target=serve)
    thread.start()
    assert coordinator.ready.wait(timeout=30)
    workers = [
        subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "worker",
                "--port",
                str(coordinator.port),
                "--id",
                f"bench-w{index}",
                "--connect-timeout",
                "30",
            ],
            env=_worker_env(),
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        for index in range(N_WORKERS)
    ]
    for process in workers:
        assert process.wait(timeout=1200) == 0
    thread.join(timeout=60)
    assert not thread.is_alive(), "coordinator did not finish"
    return summary


def time_service(cache_dir: pathlib.Path, ledger: pathlib.Path) -> dict:
    with ResultsService(cache_dir, ledger_path=ledger).start() as service:
        keys = [path.stem for path in sorted(cache_dir.glob("*.json"))]
        paths = [
            f"/results/{keys[i % len(keys)]}" if i % 3 else "/progress"
            for i in range(SERVE_REQUESTS)
        ]
        base = f"http://127.0.0.1:{service.port}"

        def fetch(path: str) -> int:
            with urllib.request.urlopen(base + path, timeout=30) as response:
                return len(response.read())

        start = time.perf_counter()
        with concurrent.futures.ThreadPoolExecutor(
            max_workers=SERVE_CLIENTS
        ) as pool:
            sizes = list(pool.map(fetch, paths))
        elapsed = time.perf_counter() - start
    assert all(size > 0 for size in sizes)
    return {
        "requests": SERVE_REQUESTS,
        "concurrent_clients": SERVE_CLIENTS,
        "seconds": elapsed,
        "requests_per_second": SERVE_REQUESTS / elapsed,
        "bytes_served": sum(sizes),
    }


def run_benchmark(tmp: pathlib.Path) -> dict:
    specs = grid()
    serial_seconds = run_serial(specs, tmp)
    summary = run_distributed(specs, tmp)
    assert summary["done"] == len(specs) and not summary["failed"]
    # Work actually spread over both workers.
    assert set(summary["workers"]) == {
        f"bench-w{index}" for index in range(N_WORKERS)
    }
    distributed_seconds = summary["compute_elapsed_seconds"]
    serial_files = sorted(
        path.name for path in (tmp / "serial").glob("*.json")
    )
    dist_files = sorted(path.name for path in (tmp / "dist").glob("*.json"))
    assert serial_files == dist_files, "result sets diverged"
    serve = time_service(tmp / "dist", tmp / "ledger.jsonl")
    return {
        "grid_points": len(specs),
        "runs_per_point": POINT_RUNS,
        "serial_seconds": serial_seconds,
        "workers": N_WORKERS,
        "distributed_compute_seconds": distributed_seconds,
        "distributed_wall_seconds": summary["elapsed_seconds"],
        "speedup": serial_seconds / distributed_seconds,
        "per_worker_points": summary["workers"],
        "serve": serve,
    }


def test_distributed_scaling_and_serving(
    benchmark, report, json_report, tmp_path
):
    measurements = benchmark.pedantic(
        run_benchmark, args=(tmp_path,), rounds=1, iterations=1
    )

    speedup = measurements["speedup"]
    scaling_gate_applies = CORES >= N_WORKERS
    if scaling_gate_applies:
        assert speedup >= MIN_SPEEDUP, (
            f"2-worker distributed sweep only {speedup:.2f}x over serial "
            f"(need >= {MIN_SPEEDUP}x on {measurements['grid_points']} "
            f"compute-bound points, {CORES} cores)"
        )
    else:
        # One core: no parallel win is physically possible, so bound
        # the fabric's overhead instead.
        overhead = 1.0 / speedup
        assert overhead <= MAX_SINGLE_CORE_OVERHEAD, (
            f"distributed fabric costs {overhead:.2f}x serial on a "
            f"single-core host (bound: {MAX_SINGLE_CORE_OVERHEAD}x)"
        )
    serve = measurements["serve"]
    assert serve["requests_per_second"] >= MIN_SERVE_RPS

    rows = [
        [
            "serial SweepRunner",
            1,
            f"{measurements['serial_seconds']:.2f}",
            "1.0x",
        ],
        [
            "distributed (compute window)",
            N_WORKERS,
            f"{measurements['distributed_compute_seconds']:.2f}",
            f"{speedup:.2f}x",
        ],
    ]
    report(
        "distributed_sweep",
        render_table(
            ["path", "workers", "seconds", "speedup"],
            rows,
            title=(
                f"Distributed sweep: {measurements['grid_points']} points "
                f"x {POINT_RUNS} runs, {PARAMS.describe()}; serve: "
                f"{serve['requests_per_second']:.0f} req/s over "
                f"{serve['concurrent_clients']} clients"
            ),
        ),
    )
    json_report(
        "BENCH_4.json",
        {
            "benchmark": "distributed_sweep",
            "smoke": SMOKE,
            "params": PARAMS.describe(),
            "cores": CORES,
            "gate": {
                "min_speedup": MIN_SPEEDUP,
                "workers": N_WORKERS,
                "speedup": speedup,
                "scaling_gate_applies": scaling_gate_applies,
                "single_core_overhead_bound": MAX_SINGLE_CORE_OVERHEAD,
            },
            **{
                key: value
                for key, value in measurements.items()
                if key != "serve"
            },
            "serve": serve,
        },
    )


# -- pagination gate (BENCH_5) -----------------------------------------------


def build_synthetic_store(cache_dir: pathlib.Path, points: int) -> float:
    """Publish ``points`` minimal results through the real store path
    (atomic file + index sidecar append, exactly what workers do);
    returns the build seconds."""
    from repro.scenario.backends import ScenarioResult
    from repro.scenario.store import store_result

    start = time.perf_counter()
    for index in range(points):
        spec = ScenarioSpec(
            name=f"page-{index}", engine="analytic", seed=index
        )
        store_result(
            cache_dir,
            spec,
            ScenarioResult(
                key=spec.key(),
                name=spec.name,
                engine=spec.engine,
                metrics={"E(T_S)": float(index)},
            ),
        )
    return time.perf_counter() - start


def run_pagination_benchmark(tmp: pathlib.Path) -> dict:
    cache = tmp / "paged"
    build_seconds = build_synthetic_store(cache, PAGE_STORE_POINTS)
    with ResultsService(cache).start() as service:
        base = f"http://127.0.0.1:{service.port}"

        def fetch(path: str) -> dict:
            with urllib.request.urlopen(base + path, timeout=60) as reply:
                return json.loads(reply.read())

        # Cold first page: pays the one-off index fold (and, on a
        # store whose sidecar lags, the reconcile parse).
        cold_start = time.perf_counter()
        first = fetch(f"/results?offset=0&limit={PAGE_LIMIT}")
        cold_seconds = time.perf_counter() - cold_start
        assert first["total"] == PAGE_STORE_POINTS
        assert first["count"] == PAGE_LIMIT

        # Warm pages across the whole store, concurrently.
        pages = PAGE_STORE_POINTS // PAGE_LIMIT
        paths = [
            f"/results?offset={(i % pages) * PAGE_LIMIT}&limit={PAGE_LIMIT}"
            for i in range(PAGE_REQUESTS)
        ]
        start = time.perf_counter()
        with concurrent.futures.ThreadPoolExecutor(
            max_workers=SERVE_CLIENTS
        ) as pool:
            bodies = list(pool.map(fetch, paths))
        elapsed = time.perf_counter() - start
        assert all(
            body["total"] == PAGE_STORE_POINTS and body["count"] > 0
            for body in bodies
        )
        # Pages tile the key space: walk them once and count.
        seen = 0
        offset = 0
        while offset is not None:
            page = fetch(f"/results?offset={offset}&limit={PAGE_LIMIT}")
            seen += page["count"]
            offset = page["next_offset"]
        assert seen == PAGE_STORE_POINTS
    return {
        "store_points": PAGE_STORE_POINTS,
        "store_build_seconds": build_seconds,
        "page_limit": PAGE_LIMIT,
        "requests": PAGE_REQUESTS,
        "concurrent_clients": SERVE_CLIENTS,
        "cold_first_page_seconds": cold_seconds,
        "seconds": elapsed,
        "requests_per_second": PAGE_REQUESTS / elapsed,
    }


def test_serve_pagination_gated_on_the_index_sidecar(
    benchmark, report, json_report, tmp_path
):
    measurements = benchmark.pedantic(
        run_pagination_benchmark, args=(tmp_path,), rounds=1, iterations=1
    )
    rps = measurements["requests_per_second"]
    assert rps >= MIN_PAGED_RPS, (
        f"paginated /results sustained only {rps:.1f} req/s over a "
        f"{PAGE_STORE_POINTS}-point store (gate: {MIN_PAGED_RPS}; a "
        f"regression to the full-scan path lands well below it)"
    )
    report(
        "serve_pagination",
        render_table(
            ["path", "store points", "req/s", "cold first page"],
            [
                [
                    f"/results?limit={PAGE_LIMIT} (index sidecar)",
                    PAGE_STORE_POINTS,
                    f"{rps:.0f}",
                    f"{measurements['cold_first_page_seconds'] * 1e3:.0f} ms",
                ]
            ],
            title=(
                f"Paginated serving over {PAGE_STORE_POINTS} points, "
                f"{SERVE_CLIENTS} clients"
            ),
        ),
    )
    json_report(
        "BENCH_5.json",
        {
            "benchmark": "serve_pagination",
            "smoke": SMOKE,
            "gate": {"min_requests_per_second": MIN_PAGED_RPS},
            **measurements,
        },
    )


if __name__ == "__main__":
    import tempfile

    with tempfile.TemporaryDirectory() as tmp:
        print(json.dumps(run_benchmark(pathlib.Path(tmp)), indent=2))
        print(
            json.dumps(run_pagination_benchmark(pathlib.Path(tmp)), indent=2)
        )
