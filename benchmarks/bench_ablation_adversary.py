"""Ablation benchmark: adversary strategies on the operational overlay.

Compares the strong adversary (Rules 1+2, biased maintenance) against a
passive baseline and a greedy-leave variant that skips Relation (2)'s
probability gate.  Expected ordering: strong >= passive, and greedy
wastes its seats (the operational face of the paper's randomization
lesson).
"""

from repro.analysis.ablations import compare_adversaries, render_adversary_comparison


def run_comparison():
    return compare_adversaries(
        mu=0.20, d=0.90, n_peers=180, duration=200.0, events_per_unit=2
    )


def test_adversary_comparison(benchmark, report):
    results = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    by_name = {r.name: r for r in results}
    strong = by_name["strong (Rules 1+2)"]
    passive = by_name["passive"]
    assert strong.peak_polluted_fraction >= passive.peak_polluted_fraction
    assert passive.joins_discarded == 0
    report("ablation_adversary", render_adversary_comparison(results))
