"""Span emission, trace propagation, and ``repro trace`` timelines.

The acceptance scenario at the bottom drives the full fabric: a sweep
submitted over the service's front door, executed by two workers under
an injected torn RESULT frame, then reconstructed -- every terminal
ledger record carrying the trace id minted at submit, the retry
attributed to the torn worker, and the CLI rendering a complete
per-point timeline.
"""

import asyncio
import json
import threading
import time

import pytest

from repro.core.parameters import ModelParameters
from repro.distributed import faults
from repro.distributed.coordinator import SweepCoordinator
from repro.distributed.faults import FaultPlan, FaultRule
from repro.distributed.ledger import (
    EVENT_DONE,
    iter_ledger_records,
    replay_ledger,
)
from repro.distributed.service import ResultsService
from repro.distributed.worker import worker_loop
from repro.obs import trace
from repro.obs.timeline import build_timeline, render_timeline, resolve_sweep
from repro.obs.trace import emit_span, new_trace_id, read_spans, span

PARAMS = {"core_size": 5, "spare_max": 5, "k": 1, "mu": 0.2, "d": 0.9}


class TestSpanEmission:
    def test_off_by_default_runs_the_block_without_writing(self, tmp_path):
        with span("unit.work", key="k") as handle:
            pass
        assert handle.trace is None  # nothing minted when off
        assert read_spans(tmp_path) == []

    def test_enabled_mints_a_trace_and_writes_one_record(self, tmp_path):
        trace.configure(tmp_path)
        assert trace.enabled()
        with span("unit.work", key="k1") as handle:
            handle.set(outcome="ok")
        records = read_spans(tmp_path)
        assert len(records) == 1
        (record,) = records
        assert record["name"] == "unit.work"
        assert record["trace"] == handle.trace
        assert len(record["trace"]) == 32
        assert record["attrs"] == {"key": "k1", "outcome": "ok"}
        assert record["dur"] >= 0 and record["ts"] > 0

    def test_supplied_trace_is_propagated_not_replaced(self, tmp_path):
        trace.configure(tmp_path)
        minted = new_trace_id()
        with span("unit.work", trace=minted):
            pass
        assert read_spans(tmp_path)[0]["trace"] == minted

    def test_exception_is_recorded_and_reraised(self, tmp_path):
        trace.configure(tmp_path)
        with pytest.raises(RuntimeError):
            with span("unit.exploding"):
                raise RuntimeError("boom")
        (record,) = read_spans(tmp_path)
        assert record["attrs"]["error"] == "RuntimeError"

    def test_emit_span_records_an_explicit_duration(self, tmp_path):
        trace.configure(tmp_path)
        emit_span(
            "unit.manual", duration=0.25, trace="t" * 32,
            attrs={"key": "k2"},
        )
        (record,) = read_spans(tmp_path)
        assert record["dur"] == 0.25
        assert record["attrs"]["key"] == "k2"

    def test_torn_tail_is_skipped_not_fatal(self, tmp_path):
        trace.configure(tmp_path)
        with span("unit.survivor"):
            pass
        (file,) = tmp_path.glob("spans-*.jsonl")
        with open(file, "a") as handle:
            handle.write('{"kind": "span", "name": "torn')  # no newline
        records = read_spans(tmp_path)
        assert [r["name"] for r in records] == ["unit.survivor"]

    def test_read_spans_on_a_missing_directory_is_empty(self, tmp_path):
        assert read_spans(tmp_path / "never-created") == []

    def test_records_sort_by_start_time_across_files(self, tmp_path):
        trace.configure(tmp_path)
        emit_span("unit.late", duration=0.0, start=2000.0)
        emit_span("unit.early", duration=0.0, start=1000.0)
        names = [r["name"] for r in read_spans(tmp_path)]
        assert names == ["unit.early", "unit.late"]

    def test_unwritable_directory_drops_spans_instead_of_raising(
        self, tmp_path
    ):
        blocked = tmp_path / "blocked"
        blocked.write_text("a file, not a directory")
        trace.configure(blocked / "sub")
        with span("unit.dropped"):
            pass  # must not raise


GRID_DOCUMENT = {
    "name": "traced-grid",
    "engine": "batch",
    "runs": 40,
    "seed": 11,
    "params": PARAMS,
    "sweep": {"params.mu": [0.1, 0.3], "adversary": ["strong", "passive"]},
}


class CoordinatorThread:
    """Drives one coordinator on a background thread."""

    def __init__(self, specs, **kwargs):
        self.coordinator = SweepCoordinator(specs, port=0, **kwargs)
        self.summary = None

        def run() -> None:
            self.summary = self.coordinator.run()

        self.thread = threading.Thread(target=run)
        self.thread.start()
        assert self.coordinator.ready.wait(timeout=10)
        self.port = self.coordinator.port

    def stop(self, timeout: float = 60.0):
        self.coordinator.request_stop()
        self.thread.join(timeout)
        assert not self.thread.is_alive(), "coordinator did not finish"
        return self.summary


class TestFaultInjectedTimeline:
    def test_submit_to_timeline_with_a_torn_result(self, tmp_path, capsys):
        """The acceptance run: submit -> 2 workers -> torn RESULT ->
        reconnect -> complete timeline under the submit-minted trace."""
        telemetry = tmp_path / "telemetry"
        trace.configure(telemetry)
        cache = tmp_path / "cache"
        ledger = tmp_path / "ledger.jsonl"

        # The first RESULT frame is torn mid-send: the coordinator sees
        # EOF mid-frame, requeues the claim as connection-lost, and the
        # worker reconnects to re-earn the point.
        faults.install(
            FaultPlan(
                [
                    FaultRule(
                        site="protocol.send",
                        action="torn",
                        match="result",
                        count=1,
                    )
                ]
            )
        )

        with ResultsService(cache, ledger_path=ledger).start() as service:
            status, _, body = service.respond_post(
                "/submit",
                json.dumps(GRID_DOCUMENT).encode(),
                "application/json",
            )
            assert status == 202
            submitted = json.loads(body)
        sweep = submitted["sweep"]
        minted = submitted["trace"]
        assert len(minted) == 32

        driver = CoordinatorThread(
            [],
            cache_dir=cache,
            ledger_path=ledger,
            watch=True,
            poll_interval=0.05,
        )
        workers = [
            threading.Thread(
                target=lambda i=i: asyncio.run(
                    worker_loop(
                        "127.0.0.1",
                        driver.port,
                        worker_id=f"w{i}",
                        reconnect_timeout=5.0,
                    )
                )
            )
            for i in range(2)
        ]
        for thread in workers:
            thread.start()
        try:
            deadline = time.monotonic() + 60
            while True:
                state = replay_ledger(ledger)
                if len(state.done) == 4:
                    break
                assert time.monotonic() < deadline, dict(
                    done=len(state.done), failed=len(state.failed)
                )
                time.sleep(0.05)
        finally:
            driver.stop()
            for thread in workers:
                thread.join(timeout=30)
                assert not thread.is_alive(), "worker did not exit"

        # Every terminal record carries the submit-minted trace id.
        state = replay_ledger(ledger)
        keys = set(state.sweeps[sweep])
        assert {state.traces[key] for key in keys} == {minted}
        done_records = [
            record
            for record in iter_ledger_records(ledger)
            if record.get("event") == EVENT_DONE
        ]
        assert len(done_records) == 4
        assert {record["trace"] for record in done_records} == {minted}
        # The torn frame produced exactly one attributed requeue.
        assert sum(state.requeues.values()) == 1

        # The worker-side spans joined the same trace.
        executes = [
            record
            for record in read_spans(telemetry)
            if record["name"] == "worker.execute"
        ]
        assert len(executes) >= 4
        assert {record["trace"] for record in executes} == {minted}

        # Timeline reconstruction: complete, per point, retry included.
        assert resolve_sweep(state, sweep[:12]) == sweep
        timeline = build_timeline(sweep[:12], ledger, telemetry)
        assert timeline["sweep"] == sweep
        assert len(timeline["points"]) == 4
        retried = 0
        for point in timeline["points"]:
            assert point["status"] == "done"
            assert point["trace"] == minted
            assert point["queue_wait"] is not None
            assert point["execute"] is not None and point["execute"] > 0
            assert point["total"] is not None
            assert point["worker"] in ("w0", "w1")
            for retry in point["retries"]:
                assert retry["reason"] == "connection-lost"
                assert retry["worker"] in ("w0", "w1")
                retried += 1
        assert retried == 1
        text = render_timeline(timeline)
        assert "4/4 done, 1 requeues" in text

        # And the CLI joins the same evidence.
        from repro.cli import main

        code = main(
            [
                "trace",
                sweep[:12],
                "--ledger",
                str(ledger),
                "--telemetry",
                str(telemetry),
                "--slow",
                "2",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert f"sweep {sweep[:16]}" in out
        assert "connection-lost" in out
        assert "showing 2 slowest" in out

    def test_unknown_and_ambiguous_sweeps_are_key_errors(self, tmp_path):
        ledger = tmp_path / "ledger.jsonl"
        with ResultsService(
            tmp_path / "cache", ledger_path=ledger
        ).start() as service:
            service.respond_post(
                "/submit",
                json.dumps(GRID_DOCUMENT).encode(),
                "application/json",
            )
        state = replay_ledger(ledger)
        with pytest.raises(KeyError, match="unknown sweep"):
            resolve_sweep(state, "f" * 64)
        with pytest.raises(KeyError, match="unknown sweep"):
            build_timeline("f" * 64, ledger)

    def test_timeline_without_telemetry_degrades_to_ledger_columns(
        self, tmp_path
    ):
        """Spans off: durations from the spans are None, ledger-derived
        columns (status, retries, queue wait) survive."""
        ledger = tmp_path / "ledger.jsonl"
        with ResultsService(
            tmp_path / "cache", ledger_path=ledger
        ).start() as service:
            _, _, body = service.respond_post(
                "/submit",
                json.dumps(GRID_DOCUMENT).encode(),
                "application/json",
            )
        sweep = json.loads(body)["sweep"]
        timeline = build_timeline(sweep, ledger, telemetry_dir=None)
        assert len(timeline["points"]) == 4
        for point in timeline["points"]:
            assert point["status"] == "pending"
            assert point["publish"] is None
        # Rendering a pending sweep must not crash on the None columns.
        assert "0/4 done" in render_timeline(timeline)
