"""Exception hierarchy of the operational overlay substrate."""

from __future__ import annotations


class OverlayError(Exception):
    """Base class for all overlay-level failures."""


class CertificateError(OverlayError):
    """Certificate issuance or verification failed."""


class SignatureError(OverlayError):
    """Message signature verification failed."""


class IdentifierError(OverlayError):
    """Malformed identifier or label."""


class IncarnationError(OverlayError):
    """Invalid incarnation arithmetic (expired, negative lifetime, ...)."""


class MembershipError(OverlayError):
    """Cluster membership invariant violated (duplicate peer, unknown
    peer, core size drift, spare overflow)."""


class TopologyError(OverlayError):
    """Prefix-tree covering invariant violated."""


class RoutingError(OverlayError):
    """No route could be established towards a key."""


class OperationRefused(OverlayError):
    """An overlay operation was received but deliberately not executed
    (e.g. Rule 2 silently dropping a join)."""


class ConsensusError(OverlayError):
    """The Byzantine agreement could not reach a decision."""
