"""Deterministic fault injection for the distributed fabric.

The chaos suite proves the fabric survives *random* kill schedules;
this module makes individual failure modes *reproducible*: a seeded
:class:`FaultPlan` names exact injection points (sites) in the
protocol, store, ledger, worker and coordinator code paths and fires a
scripted fault the Nth time execution crosses one.  The same plan +
the same workload replays the same failure, so a bug found by chaos
can be pinned as a deterministic regression test.

Sites currently wired into the fabric:

==========================  =================================================
``protocol.send``           one frame about to hit the wire (context: the
                            frame ``type``) -- supports ``drop`` (frame
                            silently discarded), ``torn`` (half the frame
                            written, then the transport is closed), ``delay``
``protocol.recv``           one decoded inbound frame (context: ``type``) --
                            ``drop`` discards it as if the wire ate it,
                            ``delay`` stalls the reader
``ledger.append``           one ledger record append (context:
                            ``<event>@<file>``) -- ``torn`` writes half the
                            line and raises ``EIO`` (the crashed-writer
                            artifact), ``drop`` loses the record, ``eio``
                            fails before any byte lands
``ledger.compact``          compaction phases (context: ``fold`` before the
                            snapshot is written, ``swap`` between snapshot
                            publish and shard deletion) -- ``exit`` here
                            simulates SIGKILL mid-compaction
``store.publish``           one atomic result publish (context: target file
                            name) -- ``eio``/``delay``
``worker.heartbeat``        one heartbeat about to be sent -- ``stall``
                            skips it (a wedged-but-connected worker),
                            ``delay`` lags it
``coordinator.result``      one RESULT/RESULT-REF arriving at the
                            coordinator (context: point key) -- ``exit``
                            kills the coordinator process mid-result
``coordinator.assign``      one assignment about to be sent (context: key)
==========================  =================================================

Actions ``delay``, ``eio`` and ``exit`` are generic and resolved here
(:func:`inject` sleeps, raises ``OSError(EIO)``, or ``os._exit``\\ s);
``drop``, ``torn`` and ``stall`` are returned to the call site, which
knows how to mangle its own I/O.  Unknown sites cost one dictionary
miss when a plan is active and a single ``None`` check when not --
cheap enough to leave compiled in.

Activation: :func:`install` for in-process use, or the
``REPRO_FAULTS`` environment variable pointing at a JSON plan file for
subprocesses (the chaos and CI schedules spawn real coordinators and
workers).  Every fired rule is appended to the plan's ``log`` file (if
configured) so a test can assert the schedule actually happened.
"""

from __future__ import annotations

import errno
import json
import os
import pathlib
import random
import threading
import time
from dataclasses import asdict, dataclass
from typing import Any, Iterable

__all__ = [
    "ENV_PLAN",
    "FaultPlan",
    "FaultRule",
    "active",
    "clear",
    "inject",
    "install",
]

#: Environment variable naming a JSON plan file; loaded lazily on the
#: first :func:`inject` call, so spawning a subprocess with it set is
#: all the wiring a chaos schedule needs.
ENV_PLAN = "REPRO_FAULTS"

ACTION_DROP = "drop"
ACTION_DELAY = "delay"
ACTION_TORN = "torn"
ACTION_EIO = "eio"
ACTION_STALL = "stall"
ACTION_EXIT = "exit"

_ACTIONS = {
    ACTION_DROP,
    ACTION_DELAY,
    ACTION_TORN,
    ACTION_EIO,
    ACTION_STALL,
    ACTION_EXIT,
}

#: Exit status of an injected ``exit`` -- distinguishable from real
#: crashes (which die on signals or tracebacks) in process tables.
DEFAULT_EXIT_CODE = 86


@dataclass
class FaultRule:
    """One scripted fault: fire ``action`` at ``site``.

    ``match`` narrows by substring of the site's context string (frame
    type, file name, point key -- whatever the site reports); ``after``
    skips that many matching crossings first; ``count`` caps how many
    times the rule fires (``None`` = forever); ``probability`` < 1
    fires on a per-rule seeded coin so a plan stays reproducible.
    """

    site: str
    action: str
    match: str = ""
    after: int = 0
    count: int | None = 1
    delay_seconds: float = 0.05
    probability: float = 1.0
    exit_code: int = DEFAULT_EXIT_CODE

    def __post_init__(self) -> None:
        if self.action not in _ACTIONS:
            raise ValueError(
                f"unknown fault action {self.action!r} "
                f"(one of {sorted(_ACTIONS)})"
            )

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "FaultRule":
        known = {field for field in cls.__dataclass_fields__}
        extra = set(payload) - known
        if extra:
            raise ValueError(f"unknown fault rule fields {sorted(extra)}")
        return cls(**payload)


class FaultPlan:
    """A seeded, ordered set of :class:`FaultRule`\\ s.

    Thread-safe: rule counters live behind one lock because sites fire
    from the event loop, executor threads and HTTP handler threads
    alike.  ``seed`` only matters for rules with ``probability`` < 1;
    each rule draws from its own ``random.Random`` stream so adding a
    rule never perturbs another's coin flips.
    """

    def __init__(
        self,
        rules: Iterable[FaultRule],
        seed: int = 0,
        log_path: str | pathlib.Path | None = None,
    ) -> None:
        self._rules = list(rules)
        self._seed = int(seed)
        self._log_path = (
            pathlib.Path(log_path) if log_path is not None else None
        )
        self._lock = threading.Lock()
        self._crossings = [0] * len(self._rules)
        self._fired = [0] * len(self._rules)
        self._rngs = [
            random.Random(f"{self._seed}:{index}:{rule.site}")
            for index, rule in enumerate(self._rules)
        ]

    @property
    def rules(self) -> list[FaultRule]:
        return list(self._rules)

    def fired_counts(self) -> dict[str, int]:
        """``{"<site>:<action>": fires}`` for every rule (diagnostic)."""
        with self._lock:
            counts: dict[str, int] = {}
            for rule, fired in zip(self._rules, self._fired):
                label = f"{rule.site}:{rule.action}"
                counts[label] = counts.get(label, 0) + fired
            return counts

    def check(self, site: str, context: str) -> FaultRule | None:
        """The rule firing at this crossing of ``site``, if any."""
        with self._lock:
            for index, rule in enumerate(self._rules):
                if rule.site != site:
                    continue
                if rule.match and rule.match not in context:
                    continue
                if rule.count is not None and self._fired[index] >= rule.count:
                    continue
                self._crossings[index] += 1
                if self._crossings[index] <= rule.after:
                    continue
                if (
                    rule.probability < 1.0
                    and self._rngs[index].random() >= rule.probability
                ):
                    continue
                self._fired[index] += 1
                self._log(site, context, rule)
                return rule
        return None

    def _log(self, site: str, context: str, rule: FaultRule) -> None:
        if self._log_path is None:
            return
        line = (
            json.dumps(
                {
                    "site": site,
                    "context": context,
                    "action": rule.action,
                    "pid": os.getpid(),
                },
                sort_keys=True,
            )
            + "\n"
        ).encode()
        try:
            fd = os.open(
                self._log_path,
                os.O_WRONLY | os.O_CREAT | os.O_APPEND,
                0o644,
            )
            try:
                os.write(fd, line)
            finally:
                os.close(fd)
        except OSError:
            pass  # the log is evidence, never load-bearing

    # -- (de)serialization ---------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        payload: dict[str, Any] = {
            "seed": self._seed,
            "rules": [asdict(rule) for rule in self._rules],
        }
        if self._log_path is not None:
            payload["log"] = str(self._log_path)
        return payload

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "FaultPlan":
        rules = [
            FaultRule.from_dict(dict(rule))
            for rule in payload.get("rules", [])
        ]
        return cls(
            rules,
            seed=int(payload.get("seed", 0)),
            log_path=payload.get("log"),
        )

    def save(self, path: str | pathlib.Path) -> pathlib.Path:
        """Write the plan as JSON (the ``REPRO_FAULTS`` file format)."""
        path = pathlib.Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_dict(), indent=2) + "\n")
        return path


# -- process-global activation ------------------------------------------------

_active_plan: FaultPlan | None = None
_env_checked = False
_state_lock = threading.Lock()


def install(plan: FaultPlan | None) -> None:
    """Activate ``plan`` in this process (``None`` deactivates)."""
    global _active_plan, _env_checked
    with _state_lock:
        _active_plan = plan
        _env_checked = True


def clear() -> None:
    """Deactivate any plan and re-arm the ``REPRO_FAULTS`` probe."""
    global _active_plan, _env_checked
    with _state_lock:
        _active_plan = None
        _env_checked = False


def active() -> FaultPlan | None:
    """The installed plan, loading ``REPRO_FAULTS`` on first call."""
    global _active_plan, _env_checked
    if _env_checked:
        return _active_plan
    with _state_lock:
        if not _env_checked:
            _env_checked = True
            source = os.environ.get(ENV_PLAN)
            if source:
                try:
                    payload = json.loads(
                        pathlib.Path(source).read_text()
                    )
                    _active_plan = FaultPlan.from_dict(payload)
                except (OSError, ValueError) as error:
                    raise RuntimeError(
                        f"unloadable {ENV_PLAN} plan {source!r}: {error}"
                    ) from None
        return _active_plan


def inject(site: str, context: str = "") -> FaultRule | None:
    """Fire any rule scripted for this crossing of ``site``.

    Generic actions resolve here: ``delay`` sleeps and returns
    ``None`` (the call site proceeds normally afterwards), ``eio``
    raises ``OSError(EIO)``, ``exit`` is ``os._exit`` -- the closest
    in-process stand-in for SIGKILL (no finally blocks, no flushes).
    ``drop``/``torn``/``stall`` return the rule for the call site to
    interpret.  With no plan active this is one ``None`` check.
    """
    plan = active()
    if plan is None:
        return None
    rule = plan.check(site, context)
    if rule is None:
        return None
    if rule.action == ACTION_DELAY:
        time.sleep(rule.delay_seconds)
        return None
    if rule.action == ACTION_EXIT:
        os._exit(rule.exit_code)
    if rule.action == ACTION_EIO:
        raise OSError(
            errno.EIO, f"injected EIO at {site} ({context or 'no context'})"
        )
    return rule
