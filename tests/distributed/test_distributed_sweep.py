"""End-to-end tests of the coordinator/worker fabric.

The contract under test, in the paper-evaluation setting that motivates
it (an 18-point adversary x parameter grid):

* a 2-worker distributed sweep produces a result set *identical* to
  the serial :class:`~repro.scenario.runner.SweepRunner` -- same
  content-addressed file names, same bytes;
* killing a worker mid-point requeues its claim (no point is lost, no
  point is double-counted);
* killing the coordinator and resuming from its ledger re-runs only
  the unfinished points;
* a point that raises is terminal (reported, never requeued).
"""

import asyncio
import threading
import time

import pytest

from repro.core.parameters import ModelParameters
from repro.distributed.coordinator import SweepCoordinator
from repro.distributed.protocol import read_frame, write_frame
from repro.distributed.worker import worker_loop
from repro.scenario.runner import SweepRunner
from repro.scenario.spec import ScenarioSpec, SweepSpec

#: Small state space keeps per-point row assembly cheap.
PARAMS = ModelParameters(core_size=5, spare_max=5, k=1, mu=0.2, d=0.9)


def grid_18() -> list[ScenarioSpec]:
    """The acceptance grid: 3 mu x 3 d x 2 adversaries = 18 points."""
    base = ScenarioSpec(
        name="dist-grid", params=PARAMS, engine="batch", runs=60, seed=19
    )
    return SweepSpec(
        base=base,
        axes=(
            ("params.mu", (0.1, 0.2, 0.3)),
            ("params.d", (0.5, 0.7, 0.9)),
            ("adversary", ("strong", "passive")),
        ),
    ).expand()


class CoordinatorThread:
    """Drives one coordinator on a background thread."""

    def __init__(self, specs, **kwargs):
        self.coordinator = SweepCoordinator(specs, port=0, **kwargs)
        self.summary = None

        def run() -> None:
            self.summary = self.coordinator.run()

        self.thread = threading.Thread(target=run)
        self.thread.start()
        assert self.coordinator.ready.wait(timeout=10)
        self.port = self.coordinator.port

    def join(self, timeout: float = 60.0):
        self.thread.join(timeout)
        assert not self.thread.is_alive(), "coordinator did not finish"
        return self.summary

    def stop(self, timeout: float = 60.0):
        self.coordinator.request_stop()
        return self.join(timeout)


def run_workers(port: int, count: int, **kwargs) -> list[dict]:
    """Run ``count`` workers to completion on background threads."""
    stats: list[dict] = []
    lock = threading.Lock()

    def drive(index: int) -> None:
        outcome = asyncio.run(
            worker_loop(
                "127.0.0.1", port, worker_id=f"w{index}", **kwargs
            )
        )
        with lock:
            stats.append(outcome)

    threads = [
        threading.Thread(target=drive, args=(index,))
        for index in range(count)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)
        assert not thread.is_alive(), "worker did not finish"
    return stats


class TestTwoWorkerEquivalence:
    def test_distributed_18_point_sweep_equals_serial(self, tmp_path):
        specs = grid_18()
        serial_dir = tmp_path / "serial"
        SweepRunner(cache_dir=serial_dir).sweep(specs)

        dist_dir = tmp_path / "dist"
        driver = CoordinatorThread(
            specs,
            cache_dir=dist_dir,
            ledger_path=tmp_path / "ledger.jsonl",
        )
        stats = run_workers(driver.port, 2)
        summary = driver.join()

        assert summary["done"] == summary["total"] == 18
        assert summary["computed"] == 18 and not summary["failed"]
        # Both workers actually participated.
        executed = {s["worker"]: s["executed"] for s in stats}
        assert set(executed) == {"w0", "w1"}
        assert all(count > 0 for count in executed.values())
        assert sum(executed.values()) == 18
        # Identical result sets: same content-addressed files, same
        # bytes (results are pure functions of the spec, wherever
        # they execute).
        serial_files = sorted(p.name for p in serial_dir.glob("*.json"))
        dist_files = sorted(p.name for p in dist_dir.glob("*.json"))
        assert serial_files == dist_files
        assert len(serial_files) == 18
        for name in serial_files:
            assert (serial_dir / name).read_bytes() == (
                dist_dir / name
            ).read_bytes()

    def test_duplicate_grid_points_are_queued_once(self, tmp_path):
        """A sweep axis listing the same value twice must not assign
        the point to two workers (or corrupt the completion count)."""
        specs = grid_18()[:3]
        duplicated = [*specs, *specs]  # every point appears twice
        driver = CoordinatorThread(
            duplicated,
            cache_dir=tmp_path / "cache",
            ledger_path=tmp_path / "ledger.jsonl",
        )
        run_workers(driver.port, 2)
        summary = driver.join()
        assert summary["total"] == 3
        assert summary["done"] == 3
        assert summary["computed"] == 3  # each unique point ran once
        assert summary["pending"] == 0

    def test_prewarmed_cache_is_not_recomputed(self, tmp_path):
        specs = grid_18()
        cache = tmp_path / "cache"
        SweepRunner(cache_dir=cache).sweep(specs[:7])
        driver = CoordinatorThread(
            specs, cache_dir=cache, ledger_path=tmp_path / "ledger.jsonl"
        )
        run_workers(driver.port, 2)
        summary = driver.join()
        assert summary["from_cache"] == 7
        assert summary["computed"] == 11
        assert summary["done"] == 18


class TestWorkerCrash:
    def test_killed_worker_claim_is_requeued(self, tmp_path):
        """Claim a point, drop the connection mid-execution, and check
        a healthy worker still completes the whole grid."""
        specs = grid_18()[:6]
        driver = CoordinatorThread(
            specs,
            cache_dir=tmp_path / "cache",
            ledger_path=tmp_path / "ledger.jsonl",
        )

        async def claim_then_die() -> str:
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", driver.port
            )
            await write_frame(
                writer, {"type": "hello", "worker": "doomed"}
            )
            await write_frame(writer, {"type": "claim"})
            message = await read_frame(reader)
            assert message["type"] == "assign"
            # Die mid-point: close without sending a result.
            writer.close()
            await writer.wait_closed()
            return message["key"]

        doomed_key = asyncio.run(claim_then_die())
        stats = run_workers(driver.port, 1)
        summary = driver.join()
        assert summary["done"] == 6
        assert summary["computed"] == 6  # the doomed point re-ran
        assert stats[0]["executed"] == 6
        assert "doomed" not in summary["workers"]
        assert (tmp_path / "cache" / f"{doomed_key}.json").exists()


class TestCoordinatorResume:
    def test_resume_runs_only_unfinished_points(self, tmp_path):
        specs = grid_18()
        cache = tmp_path / "cache"
        ledger = tmp_path / "ledger.jsonl"

        first = CoordinatorThread(specs, cache_dir=cache, ledger_path=ledger)
        partial = run_workers(first.port, 1, max_points=5)
        assert partial[0]["executed"] == 5
        summary = first.stop()  # "crash": pending points stay ledgered
        assert summary["done"] == 5 and summary["pending"] == 13

        second = CoordinatorThread(specs, cache_dir=cache, ledger_path=ledger)
        run_workers(second.port, 2)
        summary = second.join()
        assert summary["resumed_from_ledger"] == 5
        assert summary["computed"] == 13  # only the unfinished points
        assert summary["done"] == 18 and summary["pending"] == 0
        assert len(list(cache.glob("*.json"))) == 18

    def test_resume_treats_ledgered_failures_as_terminal(self, tmp_path):
        """A resumed coordinator must not re-queue a deterministic
        failure (or hang on it when no workers attach)."""
        good = grid_18()[:2]
        bad = ScenarioSpec(
            name="bad",
            params=PARAMS,
            engine="analytic",
            adversary="passive",
            seed=3,
        )
        specs = [*good, bad]
        cache = tmp_path / "cache"
        ledger = tmp_path / "ledger.jsonl"
        first = CoordinatorThread(specs, cache_dir=cache, ledger_path=ledger)
        run_workers(first.port, 1)
        summary = first.join()
        assert list(summary["failed"]) == [bad.key()]
        # Resume with no workers: completes immediately, failure intact.
        resumed = SweepCoordinator(
            specs, cache_dir=cache, ledger_path=ledger
        )
        summary = resumed.run()
        assert summary["done"] == 2 and summary["pending"] == 0
        assert list(summary["failed"]) == [bad.key()]
        assert summary["computed"] == 0

    def test_resume_with_nothing_pending_finishes_without_workers(
        self, tmp_path
    ):
        specs = grid_18()[:4]
        cache = tmp_path / "cache"
        ledger = tmp_path / "ledger.jsonl"
        first = CoordinatorThread(specs, cache_dir=cache, ledger_path=ledger)
        run_workers(first.port, 2)
        first.join()
        # No workers at all: the resumed coordinator must complete on
        # ledger replay alone.
        resumed = SweepCoordinator(
            specs, cache_dir=cache, ledger_path=ledger
        )
        summary = resumed.run()
        assert summary["done"] == 4
        assert summary["computed"] == 0
        assert summary["resumed_from_ledger"] == 4


class TestFailures:
    def test_failing_point_is_terminal_and_reported(self, tmp_path):
        good = grid_18()[:2]
        # The analytic engine embeds the strong adversary; a passive
        # spec is a deterministic SpecError on every worker.
        bad = ScenarioSpec(
            name="bad",
            params=PARAMS,
            engine="analytic",
            adversary="passive",
            seed=3,
        )
        specs = [*good, bad]
        driver = CoordinatorThread(
            specs,
            cache_dir=tmp_path / "cache",
            ledger_path=tmp_path / "ledger.jsonl",
        )
        stats = run_workers(driver.port, 2)
        summary = driver.join()
        assert summary["done"] == 2
        assert list(summary["failed"]) == [bad.key()]
        assert "SpecError" in summary["failed"][bad.key()]
        assert sum(s["failed"] for s in stats) == 1
        # The failure is in the durable ledger too.
        from repro.distributed.ledger import SweepLedger

        state = SweepLedger.replay_path(tmp_path / "ledger.jsonl")
        assert bad.key() in state.failed


class TestProtocolHygiene:
    def test_result_with_mismatched_key_is_rejected(self, tmp_path):
        specs = grid_18()[:2]
        driver = CoordinatorThread(
            specs, cache_dir=tmp_path / "cache"
        )

        async def lie_about_key() -> dict:
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", driver.port
            )
            await write_frame(writer, {"type": "hello", "worker": "liar"})
            await write_frame(writer, {"type": "claim"})
            assignment = await read_frame(reader)
            forged = dict(assignment["spec"])
            await write_frame(
                writer,
                {
                    "type": "result",
                    "key": assignment["key"],
                    "result": {
                        "key": "0" * 64,  # wrong content address
                        "name": forged.get("name", "?"),
                        "engine": "batch",
                        "metrics": {},
                        "series": None,
                        "meta": {},
                    },
                },
            )
            reply = await read_frame(reader)
            writer.close()
            await writer.wait_closed()
            return reply

        reply = asyncio.run(lie_about_key())
        assert reply["type"] == "error"
        assert "does not match" in reply["error"]
        # The point went back to the queue and real workers finish it.
        run_workers(driver.port, 1)
        summary = driver.join()
        assert summary["done"] == 2
        assert "liar" not in summary["workers"]

    def test_unstorable_result_payload_is_requeued_not_orphaned(
        self, tmp_path
    ):
        """A result whose payload cannot rebuild a ScenarioResult must
        put the point back in the queue (not strand it in no queue at
        all, which would hang the sweep forever)."""
        specs = grid_18()[:2]
        driver = CoordinatorThread(
            specs, cache_dir=tmp_path / "cache"
        )

        async def send_garbage_payload() -> dict:
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", driver.port
            )
            await write_frame(writer, {"type": "hello", "worker": "mangler"})
            await write_frame(writer, {"type": "claim"})
            assignment = await read_frame(reader)
            await write_frame(
                writer,
                {
                    "type": "result",
                    "key": assignment["key"],
                    # Correct content address, un-rebuildable payload.
                    "result": {"key": assignment["key"], "bogus": True},
                },
            )
            reply = await read_frame(reader)
            writer.close()
            await writer.wait_closed()
            return reply

        reply = asyncio.run(send_garbage_payload())
        assert reply["type"] == "error"
        assert "requeued" in reply["error"]
        run_workers(driver.port, 1)
        summary = driver.join()
        assert summary["done"] == 2 and summary["pending"] == 0
        assert "mangler" not in summary["workers"]

    def test_unknown_message_type_gets_error_frame(self, tmp_path):
        driver = CoordinatorThread(
            grid_18()[:1], cache_dir=tmp_path / "cache"
        )

        async def probe() -> dict:
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", driver.port
            )
            await write_frame(writer, {"type": "frobnicate"})
            reply = await read_frame(reader)
            writer.close()
            await writer.wait_closed()
            return reply

        reply = asyncio.run(probe())
        assert reply["type"] == "error"
        run_workers(driver.port, 1)
        assert driver.join()["done"] == 1

    def test_oversized_result_is_a_terminal_failure_not_a_livelock(
        self, tmp_path, monkeypatch
    ):
        """A result too large to frame must be reported as failed --
        not crash the worker and requeue/recompute forever."""
        from repro.distributed import protocol

        # Assign/claim/failed frames stay well under 8 KiB; a dense
        # competing-batch series (3 arrays x 2000 records) does not.
        monkeypatch.setattr(protocol, "MAX_FRAME_BYTES", 8192)
        big = ScenarioSpec(
            name="dense-series",
            params=PARAMS,
            engine="competing-batch",
            n=50,
            events=2000,
            record_every=1,
            seed=5,
        )
        specs = [*grid_18()[:2], big]
        driver = CoordinatorThread(
            specs,
            cache_dir=tmp_path / "cache",
            ledger_path=tmp_path / "ledger.jsonl",
        )
        stats = run_workers(driver.port, 1)
        summary = driver.join()
        assert stats[0]["executed"] == 2
        assert stats[0]["failed"] == 1  # reported, not crashed
        assert summary["done"] == 2 and summary["pending"] == 0
        assert list(summary["failed"]) == [big.key()]
        assert "not sendable" in summary["failed"][big.key()]

    def test_cached_result_outranks_a_ledgered_failure_on_resume(
        self, tmp_path
    ):
        """If a point failed once but a valid result later landed in
        the store (serial run, other coordinator), resume must trust
        the content-addressed result, not the stale failure."""
        from repro.distributed.ledger import SweepLedger

        specs = grid_18()[:2]
        cache = tmp_path / "cache"
        ledger = tmp_path / "ledger.jsonl"
        with SweepLedger(ledger) as log:
            log.record_scheduled(specs)
            log.record_failed(specs[0].key(), "w0", "transient OOM")
        SweepRunner(cache_dir=cache).sweep(specs)  # both now computed
        resumed = SweepCoordinator(
            specs, cache_dir=cache, ledger_path=ledger
        )
        summary = resumed.run()
        assert summary["done"] == 2
        assert summary["failed"] == {}
        assert summary["from_cache"] == 2

    def test_publish_failure_retries_then_goes_terminal(self, tmp_path):
        """A coordinator that cannot store a result requeues the point
        (keeping the worker alive -- retryable error frame, never a
        crash) until the retry cap, then fails it terminally instead
        of livelocking the fleet on recompute/republish cycles."""
        blocked = tmp_path / "blocked"
        blocked.write_text("a file where the cache dir should be")
        specs = grid_18()[:1]
        driver = CoordinatorThread(specs, cache_dir=blocked / "cache")
        stats = run_workers(driver.port, 1)
        summary = driver.join()  # completes on its own: terminal failure
        # Nothing was durably stored, so nothing counts as executed,
        # and the worker reported no spec failure of its own.
        assert stats[0]["executed"] == 0
        assert stats[0]["failed"] == 0
        assert summary["done"] == 0 and summary["pending"] == 0
        [(key, error)] = summary["failed"].items()
        assert key == specs[0].key()
        assert "not storable" in error

    def test_mid_point_heartbeats_do_not_disturb_the_sweep(self, tmp_path):
        """Workers heartbeating aggressively (every 10 ms, so several
        frames land mid-execution) still complete a correct sweep."""
        specs = grid_18()[:4]
        driver = CoordinatorThread(
            specs, cache_dir=tmp_path / "cache"
        )
        stats = run_workers(driver.port, 2, heartbeat_every=0.01)
        summary = driver.join()
        assert summary["done"] == 4
        assert sum(s["executed"] for s in stats) == 4

    def test_wire_spec_preserves_content_address(self):
        for spec in grid_18():
            rebuilt = ScenarioSpec.from_json(spec.to_json())
            assert rebuilt == spec
            assert rebuilt.key() == spec.key()


class TestWorkerSideStore:
    """RESULT-REF: the worker publishes, the coordinator validates."""

    def test_ref_results_are_byte_identical_to_result_frames(
        self, tmp_path
    ):
        specs = grid_18()[:6]
        serial_dir = tmp_path / "serial"
        SweepRunner(cache_dir=serial_dir).sweep(specs)
        dist_dir = tmp_path / "dist"
        driver = CoordinatorThread(
            specs,
            cache_dir=dist_dir,
            ledger_path=tmp_path / "ledger.jsonl",
        )
        # Workers share the coordinator's store: every result goes
        # worker-side publish + slim RESULT-REF, no payload frames.
        stats = run_workers(driver.port, 2, store_dir=dist_dir)
        summary = driver.join()
        assert summary["done"] == 6 and not summary["failed"]
        assert sum(s["executed"] for s in stats) == 6
        assert sum(s["published"] for s in stats) == 6
        for spec in specs:
            name = f"{spec.key()}.json"
            assert (serial_dir / name).read_bytes() == (
                dist_dir / name
            ).read_bytes()
        # "done" was ledgered only after validation.
        from repro.distributed.ledger import SweepLedger

        state = SweepLedger.replay_path(tmp_path / "ledger.jsonl")
        assert state.done == {spec.key() for spec in specs}

    def test_ref_to_a_store_the_coordinator_cannot_see_goes_terminal(
        self, tmp_path
    ):
        """A worker publishing into the wrong directory fails address
        validation every time; the retry cap turns that into a
        terminal failure instead of a recompute livelock."""
        specs = grid_18()[:1]
        driver = CoordinatorThread(specs, cache_dir=tmp_path / "coord")
        stats = run_workers(
            driver.port, 1, store_dir=tmp_path / "elsewhere"
        )
        summary = driver.join()
        assert summary["done"] == 0 and summary["pending"] == 0
        [(key, error)] = summary["failed"].items()
        assert key == specs[0].key()
        assert "not storable" in error
        # The worker itself never failed a spec -- and nothing it
        # "published" was acked as stored.
        assert stats[0]["failed"] == 0
        assert stats[0]["published"] == 0

    def test_forged_ref_is_requeued_and_recovered(self, tmp_path):
        """A REF claiming a publish that never happened must not mark
        the point done -- it requeues and a real worker finishes it."""
        specs = grid_18()[:2]
        driver = CoordinatorThread(specs, cache_dir=tmp_path / "cache")

        async def forge_ref() -> dict:
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", driver.port
            )
            await write_frame(writer, {"type": "hello", "worker": "forger"})
            await write_frame(writer, {"type": "claim"})
            assignment = await read_frame(reader)
            await write_frame(
                writer,
                {"type": "result-ref", "key": assignment["key"]},
            )
            reply = await read_frame(reader)
            writer.close()
            await writer.wait_closed()
            return reply

        reply = asyncio.run(forge_ref())
        assert reply["type"] == "error"
        assert reply.get("retryable") is True
        run_workers(driver.port, 1)
        summary = driver.join()
        assert summary["done"] == 2 and not summary["failed"]
        assert "forger" not in summary["workers"]

    def test_ref_for_unknown_key_is_an_error_frame(self, tmp_path):
        driver = CoordinatorThread(
            grid_18()[:1], cache_dir=tmp_path / "cache"
        )

        async def probe() -> dict:
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", driver.port
            )
            await write_frame(
                writer, {"type": "result-ref", "key": "f" * 64}
            )
            reply = await read_frame(reader)
            writer.close()
            await writer.wait_closed()
            return reply

        reply = asyncio.run(probe())
        assert reply["type"] == "error"
        assert "unknown key" in reply["error"]
        run_workers(driver.port, 1)
        assert driver.join()["done"] == 1


class TestSubmittedSweeps:
    """The ledger as the fabric's inbox: /submit-style scheduling."""

    def submit_via_ledger(self, ledger_path, specs) -> str:
        """What POST /submit appends: scheduled records + the sweep."""
        from repro.distributed.ledger import SweepLedger
        from repro.distributed.service import sweep_id

        keys = [spec.key() for spec in specs]
        with SweepLedger(ledger_path) as ledger:
            ledger.record_scheduled(specs)
            ledger.record_submitted(sweep_id(keys), keys, name="submitted")
        return sweep_id(keys)

    def test_coordinator_adopts_ledger_scheduled_points(self, tmp_path):
        """A coordinator given *no* specs of its own executes a sweep
        that exists only as ledger records -- the resume-mid-submitted-
        sweep guarantee."""
        specs = grid_18()[:5]
        ledger = tmp_path / "ledger.jsonl"
        self.submit_via_ledger(ledger, specs)
        driver = CoordinatorThread(
            [], cache_dir=tmp_path / "cache", ledger_path=ledger
        )
        run_workers(driver.port, 2)
        summary = driver.join()
        assert summary["total"] == 5
        assert summary["done"] == 5 and summary["computed"] == 5
        assert len(list((tmp_path / "cache").glob("*.json"))) == 5

    def test_killed_coordinator_resumes_a_submitted_sweep(self, tmp_path):
        specs = grid_18()[:6]
        ledger = tmp_path / "ledger.jsonl"
        cache = tmp_path / "cache"
        self.submit_via_ledger(ledger, specs)
        first = CoordinatorThread([], cache_dir=cache, ledger_path=ledger)
        partial = run_workers(first.port, 1, max_points=2)
        assert partial[0]["executed"] == 2
        summary = first.stop()  # "crash" mid-submitted-sweep
        assert summary["done"] == 2 and summary["pending"] == 4
        second = CoordinatorThread([], cache_dir=cache, ledger_path=ledger)
        run_workers(second.port, 2)
        summary = second.join()
        assert summary["done"] == 6 and summary["pending"] == 0
        assert summary["resumed_from_ledger"] == 2
        assert summary["computed"] == 4  # only the unfinished points

    def test_watch_coordinator_executes_a_live_submission(self, tmp_path):
        """Submit through a real ResultsService while the coordinator
        is already running in watch mode: the ledger tail picks the
        points up, workers execute them, pagination serves them --
        byte-identical to a serial run of the same document."""
        import json as jsonlib
        import urllib.request

        from repro.distributed.service import ResultsService
        from repro.scenario.spec import load_scenario_document

        document = {
            "name": "live-submit",
            "engine": "batch",
            "runs": 50,
            "seed": 23,
            "params": {
                "core_size": 5,
                "spare_max": 5,
                "k": 1,
                "mu": 0.2,
                "d": 0.9,
            },
            "sweep": {
                "params.mu": [0.1, 0.3],
                "adversary": ["strong", "passive"],
            },
        }
        specs = load_scenario_document(document).expand()
        serial_dir = tmp_path / "serial"
        SweepRunner(cache_dir=serial_dir).sweep(specs)

        ledger = tmp_path / "ledger.jsonl"
        cache = tmp_path / "cache"
        driver = CoordinatorThread(
            [],
            cache_dir=cache,
            ledger_path=ledger,
            watch=True,
            poll_interval=0.05,
        )
        workers = [
            threading.Thread(
                target=lambda i=i: asyncio.run(
                    worker_loop(
                        "127.0.0.1", driver.port, worker_id=f"w{i}"
                    )
                )
            )
            for i in range(2)
        ]
        for thread in workers:
            thread.start()
        try:
            with ResultsService(cache, ledger_path=ledger).start() as http:
                base = f"http://127.0.0.1:{http.port}"
                request = urllib.request.Request(
                    base + "/submit",
                    data=jsonlib.dumps(document).encode(),
                    headers={"Content-Type": "application/json"},
                    method="POST",
                )
                with urllib.request.urlopen(request, timeout=10) as reply:
                    submitted = jsonlib.loads(reply.read())
                assert reply.status == 202
                assert submitted["points"] == 4
                deadline = time.monotonic() + 60
                while True:
                    with urllib.request.urlopen(
                        base + submitted["progress"], timeout=10
                    ) as reply:
                        progress = jsonlib.loads(reply.read())
                    if progress["complete"]:
                        break
                    assert time.monotonic() < deadline, progress
                    time.sleep(0.05)
                assert progress["done"] == 4 and progress["failed"] == 0
                with urllib.request.urlopen(
                    base + "/results?offset=0&limit=2", timeout=10
                ) as reply:
                    page = jsonlib.loads(reply.read())
                assert page["total"] == 4 and page["count"] == 2
        finally:
            summary = driver.stop()
            for thread in workers:
                thread.join(timeout=30)
                assert not thread.is_alive(), "worker did not exit"
        assert summary["done"] == 4 and summary["watch"] is True
        serial_files = sorted(p.name for p in serial_dir.glob("*.json"))
        dist_files = sorted(p.name for p in cache.glob("*.json"))
        assert serial_files == dist_files
        for name in serial_files:
            assert (serial_dir / name).read_bytes() == (
                cache / name
            ).read_bytes()

    def test_watch_coordinator_idles_instead_of_shutting_down(
        self, tmp_path
    ):
        """With nothing pending, watch mode answers WAIT (stay around
        for the next submission), not SHUTDOWN."""
        driver = CoordinatorThread(
            [],
            cache_dir=tmp_path / "cache",
            ledger_path=tmp_path / "ledger.jsonl",
            watch=True,
        )

        async def claim_once() -> dict:
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", driver.port
            )
            await write_frame(writer, {"type": "hello", "worker": "idle"})
            await write_frame(writer, {"type": "claim"})
            reply = await read_frame(reader)
            writer.close()
            await writer.wait_closed()
            return reply

        assert asyncio.run(claim_once())["type"] == "wait"
        summary = driver.stop()
        assert summary["watch"] is True and summary["total"] == 0


class TestCancellation:
    """A cancel mid-sweep revokes leases and outlives in-flight work."""

    def test_cancel_releases_leases_and_ignores_late_results(
        self, tmp_path
    ):
        """While a point is leased, a ``cancelled`` record lands in the
        ledger: the coordinator releases the lease immediately (no
        point stays "leased" after a cancel) and the worker's late
        RESULT frame is acked ``stored=False`` -- dropped, not an
        error, not a requeue."""
        from repro.distributed.ledger import SweepLedger
        from repro.distributed.service import sweep_id

        specs = grid_18()[:4]
        keys = [spec.key() for spec in specs]
        sweep = sweep_id(keys)
        ledger = tmp_path / "ledger.jsonl"
        with SweepLedger(ledger) as handle:
            handle.record_scheduled(specs)
            handle.record_submitted(sweep, keys, name="doomed")
        driver = CoordinatorThread(
            [],
            cache_dir=tmp_path / "cache",
            ledger_path=ledger,
            watch=True,
            poll_interval=0.05,
        )

        async def hold_a_lease_through_a_cancel() -> dict:
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", driver.port
            )
            await write_frame(
                writer, {"type": "hello", "worker": "holdout"}
            )
            await write_frame(writer, {"type": "claim"})
            assignment = await read_frame(reader)
            assert assignment["type"] == "assign"
            # The cancel arrives while the point is leased out.
            with SweepLedger(ledger) as handle:
                handle.record_cancelled(sweep)
            deadline = time.monotonic() + 10
            while not driver.coordinator._cancelled:
                assert time.monotonic() < deadline, "cancel never applied"
                await asyncio.sleep(0.02)
            # The "computation" finishes anyway; payload content is
            # irrelevant -- a revoked key is dropped before validation.
            await write_frame(
                writer,
                {
                    "type": "result",
                    "key": assignment["key"],
                    "result": {"key": assignment["key"]},
                },
            )
            reply = await read_frame(reader)
            writer.close()
            await writer.wait_closed()
            return reply

        reply = asyncio.run(hold_a_lease_through_a_cancel())
        assert reply == {
            "type": "ack",
            "key": reply["key"],
            "stored": False,
        }
        # No leased points survive the cancel.
        assert driver.coordinator._lease_deadline == {}
        assert driver.coordinator._assigned_conn == {}
        summary = driver.stop()
        assert summary["cancelled"] == 4
        assert summary["done"] == 0 and summary["pending"] == 0
        assert list((tmp_path / "cache").glob("*.json")) == []
        # Replay agrees: nothing pending, nothing published.
        state = SweepLedger.replay_path(ledger)
        assert state.pending == set()
        assert sweep in state.cancelled
