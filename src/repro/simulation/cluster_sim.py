"""Agent-level Monte-Carlo simulation of a single cluster.

This module is the **scalar oracle** of the two-tier simulation
architecture:

* tier 1 (here) -- :class:`ClusterSimulator` re-enacts the
  *operational* semantics of Sections IV-V on explicit member lists
  (honest/malicious flags): joins filtered by Rule 2, uniform leave
  targets, Property-1 geometric expiries, ``protocol_k`` maintenance as
  actual draws without replacement, adversary-biased replacement under
  a polluted quorum, and Rule 1 voluntary departures.  It never touches
  the transition matrix, so agreement between its trajectories and
  Relations (5)-(9) validates the Figure-2 derivation end to end.
* tier 2 (:mod:`repro.simulation.batch`) -- the vectorized batch engine
  exploits member exchangeability to collapse each cluster to its
  count state ``(s, x, y)`` and advances thousands of clusters per
  NumPy call.  The scalar simulator is the semantics reference the
  batch engine is tested against.

Use this tier for semantic spot-checks and small runs; use the batch
engine for anything measured in thousands of clusters or trajectories.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.core.parameters import ModelParameters
from repro.core.policies import (
    COUNT_POLICIES,
    GREEDY_LEAVE_POLICY,
    PASSIVE_POLICY,
    STRONG_POLICY,
    CountAdversaryPolicy,
    resolve_count_policy,
)
from repro.core.rules import rule1_triggers
from repro.core.statespace import State
from repro.simulation.churn import ChurnEvent, EventKind

__all__ = [
    "COUNT_POLICIES",
    "GREEDY_LEAVE_POLICY",
    "PASSIVE_POLICY",
    "STRONG_POLICY",
    "CountAdversaryPolicy",
    "ClusterSimulator",
    "ClusterTrajectory",
    "MonteCarloSummary",
    "SimulationBudgetError",
    "monte_carlo_summary",
    "sample_initial_state",
    "SAFE_MERGE",
    "SAFE_SPLIT",
    "POLLUTED_MERGE",
]

#: Absorption classes reported by the simulator.
SAFE_MERGE = "safe-merge"
SAFE_SPLIT = "safe-split"
POLLUTED_MERGE = "polluted-merge"


class SimulationBudgetError(RuntimeError):
    """Raised when a trajectory exceeds its step budget (expected for
    parameter corners where E(T_P) blows up -- use the closed form)."""


def sample_initial_state(
    params: ModelParameters, rng: np.random.Generator, initial: str | State
) -> State:
    """Draw one starting count state ``(s, x, y)`` for an initial law.

    The shared definition of the paper's initial distributions at the
    sample level: ``"delta"`` is the deterministic malicious-free state
    ``(floor(Delta/2), 0, 0)``; ``"beta"`` draws ``s0`` uniformly on
    ``{1, .., Delta-1}`` and binomially contaminated counts
    ``x ~ Bin(C, mu)``, ``y ~ Bin(s0, mu)`` (Relation (3)).  A
    :class:`~repro.core.statespace.State` (or plain triple) passes
    through unchanged.  Used by the scalar simulator, the competing
    overlay simulation and (in vectorized form) the batch engine.
    """
    if isinstance(initial, str):
        if initial == "delta":
            return State(params.spare_max // 2, 0, 0)
        if initial == "beta":
            s0 = int(rng.integers(1, params.spare_max))
            x = int(rng.binomial(params.core_size, params.mu))
            y = int(rng.binomial(s0, params.mu))
            return State(s0, x, y)
        raise ValueError(f"unknown initial law {initial!r}")
    return State(*initial)


@dataclass(frozen=True)
class ClusterTrajectory:
    """Outcome of one simulated cluster lifetime."""

    steps: int
    time_safe: int
    time_polluted: int
    absorbed_in: str
    safe_sojourns: tuple[int, ...]
    polluted_sojourns: tuple[int, ...]

    @property
    def ended_polluted(self) -> bool:
        """True when the cluster dissolved while polluted."""
        return self.absorbed_in == POLLUTED_MERGE


class ClusterSimulator:
    """Single-cluster agent simulation matching the model's semantics.

    ``adversary`` selects the count-level strategy: a
    :class:`CountAdversaryPolicy`, a registry name from
    :data:`COUNT_POLICIES`, or ``None`` for the paper's strong
    adversary (the historical behaviour, draw-for-draw).
    """

    def __init__(
        self,
        params: ModelParameters,
        rng: np.random.Generator,
        adversary: CountAdversaryPolicy | str | None = None,
    ) -> None:
        self._params = params
        self._rng = rng
        self._policy = resolve_count_policy(adversary)

    @property
    def policy(self) -> CountAdversaryPolicy:
        """The active count-level adversary policy."""
        return self._policy

    # -- state sampling -------------------------------------------------------

    def draw_initial(
        self, initial: str | State = "delta"
    ) -> tuple[list[bool], list[bool]]:
        """Materialize shuffled core/spare member lists for an initial law.

        Public so that multi-cluster drivers (the scalar competing
        simulation) can seed replicas without reaching into the
        simulator's internals; the count state itself comes from the
        shared :func:`sample_initial_state` law.
        """
        params = self._params
        rng = self._rng
        state = sample_initial_state(params, rng, initial)
        core = [True] * state.x + [False] * (params.core_size - state.x)
        spare = [True] * state.y + [False] * (state.s - state.y)
        rng.shuffle(core)
        rng.shuffle(spare)
        return core, spare

    # -- one trajectory ----------------------------------------------------------

    def run(
        self,
        initial: str | State = "delta",
        max_steps: int = 1_000_000,
        events: Iterator[ChurnEvent] | None = None,
    ) -> ClusterTrajectory:
        """Simulate one cluster from ``initial`` until merge or split.

        ``events`` optionally supplies the join/leave decisions from a
        churn generator (:mod:`repro.simulation.churn`) instead of the
        model's Bernoulli ``p_join`` draw; only the event *kind* is
        consumed (the chain is event-indexed, not time-indexed).
        """
        params = self._params
        rng = self._rng
        core, spare = self.draw_initial(initial)
        quorum = params.pollution_quorum
        steps = 0
        time_safe = 0
        time_polluted = 0
        safe_sojourns: list[int] = []
        polluted_sojourns: list[int] = []
        current_run = 0
        currently_polluted = sum(core) > quorum

        def close_sojourn() -> None:
            nonlocal current_run
            if current_run > 0:
                target = polluted_sojourns if currently_polluted else safe_sojourns
                target.append(current_run)
            current_run = 0

        while 0 < len(spare) < params.spare_max:
            if steps >= max_steps:
                raise SimulationBudgetError(
                    f"no absorption within {max_steps} steps "
                    f"({params.describe()})"
                )
            steps += 1
            polluted_now = sum(core) > quorum
            if polluted_now != currently_polluted:
                close_sojourn()
                currently_polluted = polluted_now
            if polluted_now:
                time_polluted += 1
            else:
                time_safe += 1
            current_run += 1
            if events is None:
                join = rng.random() < params.p_join
            else:
                try:
                    join = next(events).kind is EventKind.JOIN
                except StopIteration:
                    raise SimulationBudgetError(
                        f"churn stream exhausted after {steps - 1} events "
                        f"({params.describe()})"
                    ) from None
            if join:
                self._join_event(core, spare)
            else:
                self._leave_event(core, spare)
        close_sojourn()
        if len(spare) == 0:
            absorbed = POLLUTED_MERGE if sum(core) > quorum else SAFE_MERGE
        else:
            absorbed = SAFE_SPLIT
        return ClusterTrajectory(
            steps=steps,
            time_safe=time_safe,
            time_polluted=time_polluted,
            absorbed_in=absorbed,
            safe_sojourns=tuple(safe_sojourns),
            polluted_sojourns=tuple(polluted_sojourns),
        )

    # -- event handlers -------------------------------------------------------------

    def _join_event(self, core: list[bool], spare: list[bool]) -> None:
        params = self._params
        rng = self._rng
        joiner_malicious = rng.random() < params.mu
        polluted = sum(core) > params.pollution_quorum
        s = len(spare)
        if polluted and self._policy.rule2:
            # Rule 2 filtering by the colluding quorum.
            if s == params.spare_max - 1:
                return
            if not joiner_malicious and s > 1:
                return
        spare.append(joiner_malicious)

    def _leave_event(self, core: list[bool], spare: list[bool]) -> None:
        params = self._params
        rng = self._rng
        total = len(core) + len(spare)
        target = int(rng.integers(0, total))
        if target >= len(core):
            self._spare_leave(core, spare, target - len(core))
        else:
            self._core_leave(core, spare, target)

    def _spare_leave(
        self, core: list[bool], spare: list[bool], index: int
    ) -> None:
        params = self._params
        rng = self._rng
        if not spare[index]:
            spare.pop(index)
            return
        # Malicious spare: departs only when Property 1 forces it
        # (a non-suppressing adversary follows the churn like anyone).
        if self._policy.suppress_leaves:
            y = sum(spare)
            if rng.random() < params.d**y:
                return
        spare.pop(index)

    def _core_leave(
        self, core: list[bool], spare: list[bool], index: int
    ) -> None:
        params = self._params
        rng = self._rng
        quorum = params.pollution_quorum
        x = sum(core)
        y = sum(spare)
        s = len(spare)
        policy = self._policy
        if not core[index]:
            # Honest core member departs with the natural churn.
            core.pop(index)
            if x > quorum and policy.biased_replacement:
                self._biased_replacement(core, spare)
            else:
                self._maintenance(core, spare)
            return
        # Malicious core member targeted.
        if policy.suppress_leaves and rng.random() < params.d**x:
            # Identifiers valid: only a Rule 1 voluntary leave applies.
            if x > quorum or s <= 1:
                return
            if policy.rule1 == "never":
                return
            if policy.rule1 == "gated":
                if not rule1_triggers(State(s, x, y), params):
                    return
            elif y == 0:
                # "always" still needs a malicious spare to promote.
                return
            core.pop(index)
            self._maintenance(core, spare)
            return
        # Property 1 forces the departure (or the adversary lets the
        # churn carry its member away).
        core.pop(index)
        if x - 1 > quorum and policy.biased_replacement:
            self._biased_replacement(core, spare)
        else:
            self._maintenance(core, spare)

    def _biased_replacement(
        self, core: list[bool], spare: list[bool]
    ) -> None:
        """Polluted maintenance: promote a malicious spare if any."""
        if True in spare:
            spare.remove(True)
            core.append(True)
        else:
            spare.pop()
            core.append(False)

    def _maintenance(self, core: list[bool], spare: list[bool]) -> None:
        """Safe ``protocol_k`` maintenance as literal random draws."""
        params = self._params
        rng = self._rng
        demote = min(params.k - 1, len(core))
        for _ in range(demote):
            position = int(rng.integers(0, len(core)))
            spare.append(core.pop(position))
        promote = params.core_size - len(core)
        for _ in range(promote):
            position = int(rng.integers(0, len(spare)))
            core.append(spare.pop(position))


@dataclass(frozen=True)
class MonteCarloSummary:
    """Aggregated trajectory statistics with standard errors."""

    runs: int
    mean_time_safe: float
    mean_time_polluted: float
    sem_time_safe: float
    sem_time_polluted: float
    p_safe_merge: float
    p_safe_split: float
    p_polluted_merge: float
    mean_first_safe_sojourn: float
    mean_first_polluted_sojourn: float

    def as_dict(self) -> dict[str, float]:
        """Plain-dict view mirroring ``ClusterFate.as_dict``."""
        return {
            "E(T_S)": self.mean_time_safe,
            "E(T_P)": self.mean_time_polluted,
            "p(safe-merge)": self.p_safe_merge,
            "p(safe-split)": self.p_safe_split,
            "p(polluted-merge)": self.p_polluted_merge,
        }


def monte_carlo_summary(
    params: ModelParameters,
    rng: np.random.Generator,
    runs: int,
    initial: str | State = "delta",
    max_steps: int = 1_000_000,
    adversary: CountAdversaryPolicy | str | None = None,
    events: Iterator[ChurnEvent] | None = None,
) -> MonteCarloSummary:
    """Run ``runs`` independent trajectories and aggregate them.

    ``adversary`` and ``events`` thread through to
    :class:`ClusterSimulator`; a finite churn stream is consumed across
    the whole batch of trajectories.
    """
    if runs < 1:
        raise ValueError(f"runs must be >= 1, got {runs}")
    simulator = ClusterSimulator(params, rng, adversary=adversary)
    trajectories = [
        simulator.run(initial=initial, max_steps=max_steps, events=events)
        for _ in range(runs)
    ]
    times_safe = np.array([t.time_safe for t in trajectories], dtype=float)
    times_polluted = np.array(
        [t.time_polluted for t in trajectories], dtype=float
    )
    outcomes = [t.absorbed_in for t in trajectories]
    first_safe = np.array(
        [t.safe_sojourns[0] if t.safe_sojourns else 0 for t in trajectories],
        dtype=float,
    )
    first_polluted = np.array(
        [
            t.polluted_sojourns[0] if t.polluted_sojourns else 0
            for t in trajectories
        ],
        dtype=float,
    )
    scale = np.sqrt(max(runs - 1, 1))
    return MonteCarloSummary(
        runs=runs,
        mean_time_safe=float(times_safe.mean()),
        mean_time_polluted=float(times_polluted.mean()),
        sem_time_safe=float(times_safe.std() / scale),
        sem_time_polluted=float(times_polluted.std() / scale),
        p_safe_merge=outcomes.count(SAFE_MERGE) / runs,
        p_safe_split=outcomes.count(SAFE_SPLIT) / runs,
        p_polluted_merge=outcomes.count(POLLUTED_MERGE) / runs,
        mean_first_safe_sojourn=float(first_safe.mean()),
        mean_first_polluted_sojourn=float(first_polluted.mean()),
    )
