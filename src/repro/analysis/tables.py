"""Plain-text table rendering for paper-shaped reports.

The benchmarks print the same rows the paper's tables and figure
captions report; this module renders them without third-party
formatting dependencies.
"""

from __future__ import annotations

from typing import Sequence


def format_value(value: object, precision: int = 4) -> str:
    """Compact numeric formatting: integers verbatim, small floats with
    fixed precision, large ones in scientific notation."""
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return str(value)
    if isinstance(value, int):
        return str(value)
    if value != value:  # NaN
        return "nan"
    magnitude = abs(value)
    if magnitude != 0.0 and (magnitude >= 1e6 or magnitude < 1e-4):
        return f"{value:.4g}"
    return f"{value:.{precision}f}"


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
    precision: int = 4,
) -> str:
    """Render an aligned fixed-width table."""
    text_rows = [
        [format_value(cell, precision) for cell in row] for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in text_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row with {len(row)} cells under {len(headers)} headers"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in text_rows:
        lines.append(
            "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row))
        )
    return "\n".join(lines)


def render_comparison(
    labels: Sequence[str],
    paper_values: Sequence[float | None],
    measured_values: Sequence[float],
    title: str | None = None,
) -> str:
    """Paper-vs-measured two-column comparison with relative gaps."""
    rows = []
    for label, paper, measured in zip(labels, paper_values, measured_values):
        if paper is None:
            rows.append([label, "-", measured, "-"])
            continue
        gap = abs(measured - paper) / max(abs(paper), 1e-12)
        rows.append([label, paper, measured, f"{100 * gap:.1f}%"])
    return render_table(
        ["quantity", "paper", "measured", "gap"], rows, title=title
    )
