"""``repro serve``: a stdlib HTTP service over sweep state.

Serves the two durable artifacts of the fabric -- the content-addressed
result store and the job ledger -- to many concurrent clients, with no
dependency on a live coordinator (the store and ledger are files, so
the service can run on any host that sees them, during or after a
sweep).

Routes:

==========================  =================================================
``GET /healthz``            liveness: ``{"status": "ok", "results": N}``
``GET /progress``           ledger-derived sweep progress (scheduled /
                            done / failed / claimed / pending) plus the
                            store's result count
``GET /results``            JSON index of every cached result (key, name,
                            engine, adversary, churn)
``GET /results/<key>``      one full ``{"spec": ..., "result": ...}``
                            payload by content address
``GET /report``             the aligned sweep table as ``text/plain``
                            (query: ``name=`` substring filter,
                            ``metrics=`` comma-separated columns)
==========================  =================================================

Concurrency: :class:`~http.server.ThreadingHTTPServer` dispatches one
thread per connection; handlers only read immutable content-addressed
files (atomically published, so a reader never observes a partial
result) and replay the append-only ledger, so no locking is needed.

The request-routing core (:meth:`ResultsService.respond`) is a pure
function of the path and query -- the tests exercise it directly and
through real sockets.
"""

from __future__ import annotations

import json
import pathlib
import re
import threading
import urllib.parse
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any

from repro.distributed.ledger import SweepLedger
from repro.scenario.report import collect_records, sweep_report
from repro.scenario.runner import list_cached

__all__ = ["ResultsService"]

_KEY_PATTERN = re.compile(r"^/results/([0-9a-f]{64})$")


class ResultsService:
    """HTTP frontend over a result store and (optionally) a ledger.

    ``port=0`` binds an ephemeral port (read :attr:`port` after
    construction).  :meth:`start` serves in a daemon thread (tests,
    embedding); :meth:`serve_forever` blocks (the CLI).
    """

    def __init__(
        self,
        cache_dir: str | pathlib.Path,
        ledger_path: str | pathlib.Path | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self._cache_dir = pathlib.Path(cache_dir)
        self._ledger_path = (
            pathlib.Path(ledger_path) if ledger_path is not None else None
        )
        service = self

        class _Handler(BaseHTTPRequestHandler):
            # One connection may pipeline many requests (keep-alive).
            protocol_version = "HTTP/1.1"

            def do_GET(self) -> None:  # noqa: N802 -- stdlib contract
                try:
                    status, content_type, body = service.respond(self.path)
                except Exception as error:  # noqa: BLE001 -- bad disk state
                    # e.g. a ledger that replays with a malformed
                    # record: answer 500 instead of dropping the
                    # connection with no HTTP response at all.
                    status, content_type, body = service._json(
                        500, {"error": f"{type(error).__name__}: {error}"}
                    )
                self.send_response(status)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args) -> None:  # noqa: D102
                pass  # quiet by default; curl/tests see the bodies

        self._server = ThreadingHTTPServer((host, port), _Handler)
        self._thread: threading.Thread | None = None
        # (size, mtime_ns) -> folded state: the ledger is append-only,
        # so an unchanged stat means an unchanged replay; /progress on
        # a finished million-line ledger then costs one stat call per
        # request instead of a full re-parse.
        self._replay_lock = threading.Lock()
        self._replay_stamp: tuple[int, int] | None = None
        self._replay_state = None

    @property
    def port(self) -> int:
        """The bound TCP port."""
        return self._server.server_address[1]

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> "ResultsService":
        """Serve in a background daemon thread; returns ``self``."""
        self._thread = threading.Thread(
            target=self._server.serve_forever, daemon=True
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread until interrupted."""
        self._server.serve_forever()

    def close(self) -> None:
        """Stop serving and release the socket."""
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "ResultsService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- routing core (pure: path in, response out) -------------------------

    def respond(self, path: str) -> tuple[int, str, bytes]:
        """Resolve one GET to ``(status, content_type, body)``."""
        parsed = urllib.parse.urlsplit(path)
        route = parsed.path.rstrip("/") or "/"
        query = dict(urllib.parse.parse_qsl(parsed.query))
        if route == "/healthz":
            return self._json(
                200,
                {"status": "ok", "results": self._result_count()},
            )
        if route == "/progress":
            return self._json(200, self._progress())
        if route == "/results":
            return self._json(200, list_cached(self._cache_dir))
        match = _KEY_PATTERN.match(route)
        if match:
            return self._result_payload(match.group(1))
        if route == "/report":
            text = sweep_report(
                collect_records(cache_dir=self._cache_dir),
                name=query.get("name"),
                metrics=query.get("metrics"),
                source=str(self._cache_dir),
            )
            if text is None:
                return self._text(404, "no cached results match\n")
            return self._text(200, text + "\n")
        return self._json(
            404,
            {
                "error": f"unknown route {route!r}",
                "routes": [
                    "/healthz",
                    "/progress",
                    "/results",
                    "/results/<key>",
                    "/report",
                ],
            },
        )

    # -- route bodies -------------------------------------------------------

    def _result_count(self) -> int:
        if not self._cache_dir.is_dir():
            return 0
        return sum(1 for _ in self._cache_dir.glob("*.json"))

    def _progress(self) -> dict[str, Any]:
        progress: dict[str, Any] = {
            "cache_dir": str(self._cache_dir),
            "results": self._result_count(),
            "ledger": None,
        }
        if self._ledger_path is not None and self._ledger_path.exists():
            state = self._replayed_ledger()
            pending = state.pending
            progress["ledger"] = str(self._ledger_path)
            progress.update(
                {
                    "scheduled": len(state.scheduled),
                    "done": len(state.done),
                    "failed": len(state.failed),
                    "claimed": len(
                        [key for key in state.claims if key in pending]
                    ),
                    "pending": len(pending),
                    "complete": not pending,
                }
            )
        return progress

    def _replayed_ledger(self):
        """Replay the ledger, memoized on its (size, mtime) stamp."""
        stat = self._ledger_path.stat()
        stamp = (stat.st_size, stat.st_mtime_ns)
        with self._replay_lock:
            if stamp != self._replay_stamp:
                self._replay_state = SweepLedger.replay_path(
                    self._ledger_path
                )
                self._replay_stamp = stamp
            return self._replay_state

    def _result_payload(self, key: str) -> tuple[int, str, bytes]:
        path = self._cache_dir / f"{key}.json"
        if not path.exists():
            return self._json(404, {"error": f"no cached result {key}"})
        # The file is the canonical JSON payload; serve its bytes.
        return 200, "application/json", path.read_bytes()

    @staticmethod
    def _json(status: int, payload: Any) -> tuple[int, str, bytes]:
        body = (json.dumps(payload, indent=2, sort_keys=True) + "\n").encode()
        return status, "application/json", body

    @staticmethod
    def _text(status: int, text: str) -> tuple[int, str, bytes]:
        return status, "text/plain; charset=utf-8", text.encode()
