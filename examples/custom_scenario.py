"""Custom scenarios without writing a new module.

The scenario subsystem turns every workload into data: a
:class:`~repro.scenario.spec.ScenarioSpec` names the model point, the
initial distribution, the adversary, the churn process and the engine
tier, and the :class:`~repro.scenario.runner.SweepRunner` executes any
number of them -- serially, across worker processes, or straight from a
JSON/TOML file.  This example builds three views of the same attack
(closed form, vectorized Monte Carlo, member-list oracle under Pareto
churn), then expands a small adversary-by-churn grid with deterministic
per-point child seeds.

Run:  python examples/custom_scenario.py
"""

from repro.analysis.tables import render_table
from repro.scenario import ScenarioSpec, SweepRunner
from repro.scenario.runner import expand_grid


def main() -> None:
    runner = SweepRunner()  # serial, uncached; pass workers=/cache_dir=

    base = ScenarioSpec(
        name="custom",
        params=ScenarioSpec().params.with_overrides(mu=0.20, d=0.90),
        initial="delta",
        runs=4000,
        seed=11,
    )

    # -- one attack, three engine tiers ---------------------------------
    print("Three views of mu=20%, d=90% (strong adversary):")
    for engine in ("analytic", "batch", "scalar"):
        result = runner.run(base.with_overrides(engine=engine))
        print(
            f"  {engine:<10} E(T_S)={result.metrics['E(T_S)']:8.4f}  "
            f"E(T_P)={result.metrics['E(T_P)']:7.4f}"
        )
    print()

    # -- the oracle under heavy-tailed churn ----------------------------
    pareto = base.with_overrides(
        engine="scalar",
        churn="pareto-sessions",
        churn_options={"shape": 1.5, "horizon": 200000.0},
        runs=2000,
    )
    result = runner.run(pareto)
    print(
        "Pareto-session churn (heavy tail), scalar oracle: "
        f"E(T_P)={result.metrics['E(T_P)']:.4f}, "
        f"p(polluted-merge)={result.metrics['p(polluted-merge)']:.4f}"
    )
    print()

    # -- a declarative grid ---------------------------------------------
    points = expand_grid(
        base.with_overrides(engine="scalar", runs=1000),
        {
            "adversary": ["strong", "passive"],
            "churn": ["bernoulli", "poisson"],
        },
    )
    results = runner.sweep(points)
    rows = [
        [
            point.adversary,
            point.churn,
            point.seed_index,
            result.metrics["E(T_P)"],
            result.metrics["p(polluted-merge)"],
        ]
        for point, result in zip(points, results)
    ]
    print(
        render_table(
            ["adversary", "churn", "seed_index", "E(T_P)", "p(polluted-merge)"],
            rows,
            title="adversary x churn grid (scalar oracle, child seeds)",
        )
    )


if __name__ == "__main__":
    main()
