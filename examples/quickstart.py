"""Quickstart: evaluate a cluster under targeted attack in ten lines.

Builds the paper's base configuration (C = 7, Delta = 7, protocol_1),
sets an adversary controlling 20 % of the universe with identifiers
surviving 90 % of the time, and prints every quantity the paper reports
for a single cluster.

Run:  python examples/quickstart.py
"""

from repro import ClusterModel, ModelParameters, OverlayModel
from repro.core.calibration import half_life, lifetime_from_d


def main() -> None:
    params = ModelParameters(
        core_size=7,   # C: core members running the overlay operations
        spare_max=7,   # Delta: spare capacity absorbing churn
        k=1,           # protocol_1: the paper's best randomization amount
        mu=0.20,       # adversary controls 20 % of the universe
        d=0.90,        # ids survive one unit of time w.p. 90 %
    )
    model = ClusterModel(params)

    print("Cluster model:", params.describe())
    print("state space:  ", model.space.describe())
    print()

    # Relations (5) and (6): expected events spent safe/polluted before
    # the cluster dissolves through a merge or a split.
    safe = model.expected_time_safe("delta")
    polluted = model.expected_time_polluted("delta")
    # Paper Table II gives the per-sojourn decomposition at this point:
    # E(T_S,1)=11.890, E(T_S,2)=0.033 and E(T_P,1)=0.558, E(T_P,2)~0.026;
    # the totals below are their sums (plus the negligible deeper tail).
    print(f"E(T_S) = {safe:8.4f} events   (paper: ~11.92)")
    print(f"E(T_P) = {polluted:8.4f} events   (paper: ~0.59)")
    print()

    # Relation (9): where does the cluster end up?
    fate = model.absorption_probabilities("delta")
    for name, probability in fate.items():
        print(f"p({name:>14}) = {probability:.4f}")
    print()

    # Property 1 calibration: what lifetime L realizes d = 0.90?
    print(f"identifier half-life t1/2 = {half_life(params.d):.2f} time units")
    print(f"certificate lifetime  L   = {lifetime_from_d(params.d):.2f} "
          "(99 % of ids decayed)")
    print()

    # Theorem 2: expected proportion of polluted clusters in an overlay
    # of 500 clusters after 20 000 uniformly dispatched events.
    overlay = OverlayModel(params, n_clusters=500, chain=model.chain)
    series = overlay.proportion_series("delta", 20_000, record_every=2000)
    print("overlay of 500 clusters (Theorem 2):")
    for m, safe_frac, polluted_frac in zip(
        series.events, series.safe_fraction, series.polluted_fraction
    ):
        print(
            f"  after {m:6d} events: safe {safe_frac:6.3f}  "
            f"polluted {polluted_frac:6.4f}"
        )
    print(f"  peak polluted proportion: {series.peak_polluted_fraction:.4f}")


if __name__ == "__main__":
    main()
