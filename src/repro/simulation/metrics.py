"""Statistical helpers for simulation-vs-model comparisons."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats


@dataclass(frozen=True)
class ConfidenceInterval:
    """A two-sided confidence interval around a sample mean."""

    mean: float
    low: float
    high: float
    level: float

    def contains(self, value: float) -> bool:
        """True when ``value`` falls inside the interval."""
        return self.low <= value <= self.high

    @property
    def half_width(self) -> float:
        """Interval half-width."""
        return (self.high - self.low) / 2.0


def mean_confidence_interval(
    samples: np.ndarray, level: float = 0.95
) -> ConfidenceInterval:
    """Student-t confidence interval for the mean of ``samples``."""
    values = np.asarray(samples, dtype=float)
    if values.ndim != 1 or values.size < 2:
        raise ValueError("need a 1-D sample of size >= 2")
    if not 0.0 < level < 1.0:
        raise ValueError(f"level must be in (0, 1), got {level}")
    mean = float(values.mean())
    sem = float(stats.sem(values))
    if sem == 0.0:
        return ConfidenceInterval(mean=mean, low=mean, high=mean, level=level)
    half = sem * float(stats.t.ppf((1.0 + level) / 2.0, values.size - 1))
    return ConfidenceInterval(
        mean=mean, low=mean - half, high=mean + half, level=level
    )


def relative_error(measured: float, reference: float) -> float:
    """``|measured - reference| / max(|reference|, eps)``."""
    denominator = max(abs(reference), np.finfo(float).eps)
    return abs(measured - reference) / denominator


def within_tolerance(
    measured: float, reference: float, rel_tol: float, abs_tol: float = 0.0
) -> bool:
    """Combined relative/absolute tolerance check used by validation
    benchmarks (mirrors ``math.isclose`` semantics)."""
    gap = abs(measured - reference)
    return gap <= max(rel_tol * abs(reference), abs_tol)


@dataclass
class SeriesAccumulator:
    """Averages repeated runs of a recorded series point-wise."""

    _total: np.ndarray | None = None
    _count: int = 0

    def add(self, series: np.ndarray) -> None:
        """Accumulate one run (all runs must share a length)."""
        values = np.asarray(series, dtype=float)
        if self._total is None:
            self._total = values.copy()
        else:
            if values.shape != self._total.shape:
                raise ValueError(
                    f"series shape {values.shape} differs from "
                    f"{self._total.shape}"
                )
            self._total += values
        self._count += 1

    @property
    def count(self) -> int:
        """Number of accumulated runs."""
        return self._count

    def mean(self) -> np.ndarray:
        """Point-wise mean across accumulated runs."""
        if self._total is None:
            raise ValueError("no series accumulated")
        return self._total / self._count
