"""Process-local metrics: counters, gauges, histograms, Prometheus text.

The fabric needed numbers before it needed dashboards, so this module
is deliberately dependency-free: a :class:`MetricsRegistry` holds
named metrics, every mutation is a dict update under one lock (cheap
enough for the coordinator's per-frame counters, atomic under the
``ThreadingHTTPServer`` / asyncio threading mix the fabric runs on),
and :meth:`MetricsRegistry.render` emits the Prometheus text
exposition format (``text/plain; version=0.0.4``) that ``GET
/metrics`` serves.

Conventions (matching the Prometheus client ecosystem):

* counters end in ``_total`` and only go up;
* histograms expose cumulative ``_bucket{le="..."}`` series plus
  ``_sum`` and ``_count``;
* label sets are fixed per metric at registration; a metric registered
  twice with the same name returns the existing instance, so module-
  level ``counter(...)`` declarations are safe to re-import.

The module-level default registry (:func:`default_registry`) is what
the instrumented seams -- coordinator, worker, service, runner, batch
engine, store -- share within one process.  Registries are process
local by design: a forked sweep worker counts in its own copy, and
cross-process aggregation happens where it belongs, in the ledger
(replayed by the service's ``/metrics`` gauges) and the span JSONL.
"""

from __future__ import annotations

import re
import threading
import time
from contextlib import contextmanager
from typing import Any, Iterator, Mapping, Sequence

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "counter",
    "default_registry",
    "gauge",
    "histogram",
    "render",
    "timed",
]

#: Fixed latency bucket layout (seconds).  Spans request handling
#: (sub-millisecond stats) through sweep points (seconds); fixed so
#: every process's histograms aggregate cleanly.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.001,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
    30.0,
)

_NAME_OK = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")


def _format_value(value: float) -> str:
    """Prometheus sample formatting: integers bare, floats as repr."""
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _label_key(
    labels: Sequence[str], supplied: Mapping[str, str]
) -> tuple[str, ...]:
    if set(supplied) != set(labels):
        raise ValueError(
            f"metric labels {sorted(labels)} != supplied "
            f"{sorted(supplied)}"
        )
    return tuple(str(supplied[name]) for name in labels)


def _render_labels(
    labels: Sequence[str], values: Sequence[str], extra: str | None = None
) -> str:
    parts = [
        f'{name}="{_escape_label(value)}"'
        for name, value in zip(labels, values)
    ]
    if extra is not None:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


class _Metric:
    """Shared shape: name, help, fixed label names, a samples dict."""

    kind = "untyped"

    def __init__(
        self,
        name: str,
        help_text: str,
        labels: Sequence[str],
        lock: threading.Lock,
    ) -> None:
        if not _NAME_OK.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        self.name = name
        self.help = help_text
        self.labels = tuple(labels)
        self._lock = lock
        self._samples: dict[tuple[str, ...], Any] = {}

    def _render_header(self) -> list[str]:
        return [
            f"# HELP {self.name} {self.help}",
            f"# TYPE {self.name} {self.kind}",
        ]


class Counter(_Metric):
    """Monotonically increasing count (``..._total``)."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount}")
        key = _label_key(self.labels, labels)
        with self._lock:
            self._samples[key] = self._samples.get(key, 0.0) + amount

    def value(self, **labels: str) -> float:
        """Current count for one label set (0 if never incremented)."""
        key = _label_key(self.labels, labels)
        with self._lock:
            return float(self._samples.get(key, 0.0))

    def render(self) -> list[str]:
        lines = self._render_header()
        with self._lock:
            items = sorted(self._samples.items())
        for values, count in items:
            lines.append(
                f"{self.name}{_render_labels(self.labels, values)} "
                f"{_format_value(count)}"
            )
        return lines


class Gauge(_Metric):
    """A value that goes up and down (queue depths, sizes, stamps)."""

    kind = "gauge"

    def set(self, value: float, **labels: str) -> None:
        key = _label_key(self.labels, labels)
        with self._lock:
            self._samples[key] = float(value)

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        key = _label_key(self.labels, labels)
        with self._lock:
            self._samples[key] = self._samples.get(key, 0.0) + amount

    def value(self, **labels: str) -> float:
        key = _label_key(self.labels, labels)
        with self._lock:
            return float(self._samples.get(key, 0.0))

    def render(self) -> list[str]:
        lines = self._render_header()
        with self._lock:
            items = sorted(self._samples.items())
        for values, value in items:
            lines.append(
                f"{self.name}{_render_labels(self.labels, values)} "
                f"{_format_value(value)}"
            )
        return lines


class Histogram(_Metric):
    """Fixed-bucket distribution (cumulative ``le`` buckets + sum/count).

    The bucket layout is fixed at registration so every observation is
    one bisect + three dict updates -- no allocation on the hot path.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str,
        labels: Sequence[str],
        lock: threading.Lock,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, help_text, labels, lock)
        self.buckets = tuple(sorted(float(b) for b in buckets))
        if not self.buckets:
            raise ValueError("histogram needs at least one bucket")

    def observe(self, value: float, **labels: str) -> None:
        key = _label_key(self.labels, labels)
        with self._lock:
            sample = self._samples.get(key)
            if sample is None:
                sample = {
                    "buckets": [0] * len(self.buckets),
                    "sum": 0.0,
                    "count": 0,
                }
                self._samples[key] = sample
            for index, bound in enumerate(self.buckets):
                if value <= bound:
                    sample["buckets"][index] += 1
            sample["sum"] += float(value)
            sample["count"] += 1

    @contextmanager
    def time(self, **labels: str) -> Iterator[None]:
        """Observe the wall time of a ``with`` block."""
        started = time.perf_counter()
        try:
            yield
        finally:
            self.observe(time.perf_counter() - started, **labels)

    def count(self, **labels: str) -> int:
        """Observations so far for one label set."""
        key = _label_key(self.labels, labels)
        with self._lock:
            sample = self._samples.get(key)
            return int(sample["count"]) if sample else 0

    def render(self) -> list[str]:
        lines = self._render_header()
        with self._lock:
            items = sorted(
                (key, dict(s, buckets=list(s["buckets"])))
                for key, s in self._samples.items()
            )
        for values, sample in items:
            for bound, cumulative in zip(self.buckets, sample["buckets"]):
                extra = 'le="%g"' % bound
                lines.append(
                    f"{self.name}_bucket"
                    f"{_render_labels(self.labels, values, extra)}"
                    f" {cumulative}"
                )
            inf = 'le="+Inf"'
            lines.append(
                f"{self.name}_bucket"
                f"{_render_labels(self.labels, values, inf)}"
                f" {sample['count']}"
            )
            suffix = _render_labels(self.labels, values)
            lines.append(
                f"{self.name}_sum{suffix} {_format_value(sample['sum'])}"
            )
            lines.append(f"{self.name}_count{suffix} {sample['count']}")
        return lines


class MetricsRegistry:
    """Named metrics + the text encoder; one per process by default."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[str, _Metric] = {}

    def _register(self, name: str, factory) -> _Metric:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                return existing
            metric = factory()
            self._metrics[name] = metric
            return metric

    def counter(
        self, name: str, help_text: str, labels: Sequence[str] = ()
    ) -> Counter:
        metric = self._register(
            name,
            lambda: Counter(name, help_text, labels, threading.Lock()),
        )
        if not isinstance(metric, Counter):
            raise TypeError(f"{name} is already a {metric.kind}")
        return metric

    def gauge(
        self, name: str, help_text: str, labels: Sequence[str] = ()
    ) -> Gauge:
        metric = self._register(
            name,
            lambda: Gauge(name, help_text, labels, threading.Lock()),
        )
        if not isinstance(metric, Gauge):
            raise TypeError(f"{name} is already a {metric.kind}")
        return metric

    def histogram(
        self,
        name: str,
        help_text: str,
        labels: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        metric = self._register(
            name,
            lambda: Histogram(
                name, help_text, labels, threading.Lock(), buckets
            ),
        )
        if not isinstance(metric, Histogram):
            raise TypeError(f"{name} is already a {metric.kind}")
        return metric

    def render(self) -> str:
        """The whole registry in Prometheus text exposition format."""
        with self._lock:
            metrics = sorted(self._metrics.values(), key=lambda m: m.name)
        lines: list[str] = []
        for metric in metrics:
            lines.extend(metric.render())
        return "\n".join(lines) + "\n" if lines else ""


_DEFAULT = MetricsRegistry()


def default_registry() -> MetricsRegistry:
    """The process-wide registry every instrumented seam shares."""
    return _DEFAULT


def counter(
    name: str, help_text: str, labels: Sequence[str] = ()
) -> Counter:
    """Register (or fetch) a counter on the default registry."""
    return _DEFAULT.counter(name, help_text, labels)


def gauge(name: str, help_text: str, labels: Sequence[str] = ()) -> Gauge:
    """Register (or fetch) a gauge on the default registry."""
    return _DEFAULT.gauge(name, help_text, labels)


def histogram(
    name: str,
    help_text: str,
    labels: Sequence[str] = (),
    buckets: Sequence[float] = DEFAULT_BUCKETS,
) -> Histogram:
    """Register (or fetch) a histogram on the default registry."""
    return _DEFAULT.histogram(name, help_text, labels, buckets)


def render() -> str:
    """Render the default registry (what ``GET /metrics`` serves)."""
    return _DEFAULT.render()


@contextmanager
def timed(
    seconds: Counter, calls: Counter | None = None, **labels: str
) -> Iterator[None]:
    """Accumulate a block's wall time into counters (phase timers).

    The batch engine uses counter pairs (``..._seconds_total`` +
    ``..._calls_total``) instead of histograms on its per-chunk
    phases: two adds per chunk is cheap enough to leave on always,
    which is the whole point of the 3% overhead gate.
    """
    started = time.perf_counter()
    try:
        yield
    finally:
        seconds.inc(time.perf_counter() - started, **labels)
        if calls is not None:
            calls.inc(**labels)
