"""Unit tests for Markov state classification."""

import numpy as np

from repro.markov.classify import (
    absorbing_states,
    communicating_classes,
    is_absorbing_chain,
    recurrent_classes,
    transient_states,
    transition_graph,
)

# A 4-state chain: 0 and 1 are transient, 2 and 3 are each absorbing.
CHAIN = np.array(
    [
        [0.5, 0.2, 0.3, 0.0],
        [0.1, 0.4, 0.0, 0.5],
        [0.0, 0.0, 1.0, 0.0],
        [0.0, 0.0, 0.0, 1.0],
    ]
)

# A 3-state chain with a recurrent pair {1, 2}.
PAIR = np.array(
    [
        [0.0, 1.0, 0.0],
        [0.0, 0.0, 1.0],
        [0.0, 1.0, 0.0],
    ]
)


class TestTransitionGraph:
    def test_edges_follow_positive_entries(self):
        graph = transition_graph(CHAIN)
        assert graph.has_edge(0, 2)
        assert not graph.has_edge(2, 0)

    def test_epsilon_filters_noise(self):
        noisy = np.array([[1.0 - 1e-20, 1e-20], [0.0, 1.0]])
        graph = transition_graph(noisy)
        assert not graph.has_edge(0, 1)


class TestClassification:
    def test_absorbing_states(self):
        assert absorbing_states(CHAIN) == [2, 3]

    def test_transient_states(self):
        assert transient_states(CHAIN) == [0, 1]

    def test_recurrent_classes_are_singletons_here(self):
        classes = recurrent_classes(CHAIN)
        assert sorted(map(sorted, classes)) == [[2], [3]]

    def test_recurrent_pair(self):
        classes = recurrent_classes(PAIR)
        assert len(classes) == 1
        assert classes[0] == frozenset({1, 2})
        assert transient_states(PAIR) == [0]

    def test_communicating_classes_partition_states(self):
        classes = communicating_classes(CHAIN)
        members = sorted(state for cls in classes for state in cls)
        assert members == [0, 1, 2, 3]

    def test_irreducible_chain_has_no_transients(self):
        ring = np.array([[0.0, 1.0], [1.0, 0.0]])
        assert transient_states(ring) == []
        assert recurrent_classes(ring) == [frozenset({0, 1})]

    def test_is_absorbing_chain(self):
        assert is_absorbing_chain(CHAIN)
        assert is_absorbing_chain(PAIR)
        assert not is_absorbing_chain(np.zeros((0, 0)))
