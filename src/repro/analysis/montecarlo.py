"""Empirical (Monte-Carlo) columns for the paper's tables and figures.

The analytic modules (:mod:`repro.analysis.table2`,
:mod:`repro.analysis.figure5`, ...) evaluate closed forms; this module
produces the matching *empirical* columns by running the vectorized
batch engine of :mod:`repro.simulation.batch`, so every published
number can be paired with an independent simulation estimate at a
sample size that would be impractical with the scalar per-member
simulator (tens of thousands of trajectories take tens of
milliseconds).

* :func:`empirical_sojourn_columns` -- Table II's quantities
  (``E(T_S)``, ``E(T_P)`` and the first safe/polluted sojourns,
  Relations (5)-(8)) estimated from batch trajectories;
* :func:`empirical_table2` / :func:`render_empirical_table2` -- the
  full mu-grid of Table II with closed-form and Monte-Carlo columns
  side by side;
* :func:`empirical_proportion_series` -- Figure 5's expected
  safe/polluted cluster proportions, averaged over seeded replications
  of the competing-clusters simulation (Theorem 2's empirical
  counterpart).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.experiments import (
    TABLE2_D,
    TABLE2_MU_GRID,
    ModelCache,
    analysis_runner,
    base_parameters,
    mu_percent,
)
from repro.analysis.tables import render_table
from repro.core.parameters import ModelParameters
from repro.scenario import ScenarioSpec, SweepRunner
from repro.simulation.batch import (
    CompetingSeries,
    batch_monte_carlo_summary,
)
from repro.simulation.cluster_sim import MonteCarloSummary

#: Seed namespace for analysis-level Monte-Carlo estimates.
DEFAULT_SEED = 20110627


def empirical_sojourn_columns(
    params: ModelParameters,
    runs: int = 20_000,
    initial: str = "delta",
    seed: int = DEFAULT_SEED,
    max_steps: int = 2_000_000,
) -> MonteCarloSummary:
    """Batch Monte-Carlo estimates of Relations (5)-(8) at one point."""
    rng = np.random.default_rng(seed)
    return batch_monte_carlo_summary(
        params, rng, runs=runs, initial=initial, max_steps=max_steps
    )


@dataclass(frozen=True)
class EmpiricalTable2Row:
    """Closed-form and Monte-Carlo Table-II quantities at one ``mu``."""

    mu: float
    runs: int
    safe_first: float
    safe_first_mc: float
    polluted_first: float
    polluted_first_mc: float
    total_safe: float
    total_safe_mc: float
    total_polluted: float
    total_polluted_mc: float


def empirical_table2_specs(
    runs: int = 20_000,
    mu_grid: tuple[float, ...] = TABLE2_MU_GRID,
    d: float = TABLE2_D,
    seed: int = DEFAULT_SEED,
) -> list[ScenarioSpec]:
    """The closed-form/batch spec pairs of the empirical Table II.

    Each ``mu`` contributes one ``analytic`` point (depth-1 sojourn
    profile) and one ``batch`` point whose seed is ``seed + index`` --
    the historical per-row law, kept so rows stay reproducible
    independently of the grid they appear in.
    """
    specs: list[ScenarioSpec] = []
    for offset, mu in enumerate(mu_grid):
        params = base_parameters(k=1, mu=mu, d=d)
        specs.append(
            ScenarioSpec(
                name=f"table2-closed[mu={mu}]",
                params=params,
                engine="analytic",
                options={"metrics": "sojourns", "depth": 1},
            )
        )
        specs.append(
            ScenarioSpec(
                name=f"table2-mc[mu={mu}]",
                params=params,
                engine="batch",
                runs=runs,
                seed=seed + offset,
                max_steps=2_000_000,
            )
        )
    return specs


def empirical_table2(
    runs: int = 20_000,
    mu_grid: tuple[float, ...] = TABLE2_MU_GRID,
    d: float = TABLE2_D,
    seed: int = DEFAULT_SEED,
    cache: ModelCache | None = None,
    runner: SweepRunner | None = None,
) -> list[EmpiricalTable2Row]:
    """Table II's grid with an empirical column per closed form."""
    del cache
    results = analysis_runner(runner).sweep(
        empirical_table2_specs(runs, mu_grid, d, seed)
    )
    rows: list[EmpiricalTable2Row] = []
    for offset, mu in enumerate(mu_grid):
        closed = results[2 * offset].metrics
        measured = results[2 * offset + 1].metrics
        rows.append(
            EmpiricalTable2Row(
                mu=mu,
                runs=runs,
                safe_first=closed["E(T_S,1)"],
                safe_first_mc=measured["E(T_S,1)"],
                polluted_first=closed["E(T_P,1)"],
                polluted_first_mc=measured["E(T_P,1)"],
                total_safe=closed["E(T_S)"],
                total_safe_mc=measured["E(T_S)"],
                total_polluted=closed["E(T_P)"],
                total_polluted_mc=measured["E(T_P)"],
            )
        )
    return rows


def render_empirical_table2(rows: list[EmpiricalTable2Row]) -> str:
    """Paper-shaped table pairing each closed form with its estimate."""
    body = [
        [
            f"mu={mu_percent(row.mu)}%",
            row.safe_first,
            row.safe_first_mc,
            row.polluted_first,
            row.polluted_first_mc,
            row.total_safe,
            row.total_safe_mc,
            row.total_polluted,
            row.total_polluted_mc,
        ]
        for row in rows
    ]
    runs = rows[0].runs if rows else 0
    return render_table(
        [
            "mu",
            "E(T_S,1)",
            "MC",
            "E(T_P,1)",
            "MC",
            "E(T_S)",
            "MC",
            "E(T_P)",
            "MC",
        ],
        body,
        title=(
            f"Table II empirical columns: batch Monte Carlo, {runs} runs "
            f"per point, d={round(100 * TABLE2_D)}%, alpha=delta"
        ),
    )


def empirical_proportion_series(
    params: ModelParameters,
    n_clusters: int,
    n_events: int,
    record_every: int = 500,
    replications: int = 5,
    initial: str = "delta",
    seed: int = DEFAULT_SEED,
    runner: SweepRunner | None = None,
) -> CompetingSeries:
    """Replication-averaged Figure-5 curve from the batch engine.

    Runs ``replications`` independently seeded competing-clusters
    simulations and averages their occupancy series; the result is the
    empirical counterpart of
    :meth:`~repro.core.overlay_model.OverlayModel.proportion_series`
    and is returned as a :class:`CompetingSeries` over the same event
    axis.
    """
    if replications < 1:
        raise ValueError(f"replications must be >= 1, got {replications}")
    spec = ScenarioSpec(
        name=(
            f"proportions[n={n_clusters},mu={params.mu},d={params.d},"
            f"events={n_events}]"
        ),
        params=params,
        initial=initial,
        engine="competing-batch",
        n=n_clusters,
        events=n_events,
        record_every=record_every,
        replications=replications,
        seed=seed,
    )
    result = analysis_runner(runner).run(spec)
    return CompetingSeries(
        events=np.asarray(result.series["events"]),
        safe_fraction=np.asarray(result.series["safe_fraction"]),
        polluted_fraction=np.asarray(result.series["polluted_fraction"]),
        n_clusters=n_clusters,
    )
