"""Benchmark: regenerate Table II (successive sojourn times).

Paper rows: E(T_S,n), E(T_P,n) for n in {1, 2}, k = 1, d = 90 %,
alpha = delta.  Shape asserted: measured values match the published
cells within printed rounding and the chain barely alternates
(first sojourns carry > 95 % of each total).
"""

import pytest

from repro.analysis.table2 import (
    PAPER_TABLE2,
    alternation_is_negligible,
    compute_table2,
    render_table2,
)


def test_table2(benchmark, report):
    rows = benchmark(compute_table2)
    assert alternation_is_negligible(rows)
    for row in rows:
        paper = PAPER_TABLE2[row.mu]
        assert row.safe_first == pytest.approx(paper[0], abs=0.005)
        assert row.polluted_first == pytest.approx(paper[2], abs=0.005)
    report("table2", render_table2(rows))
