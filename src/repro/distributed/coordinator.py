"""The coordinator: durable job queue + TCP assignment of sweep points.

One :class:`SweepCoordinator` owns a sweep: it expands the grid,
records every point into the JSONL job ledger, serves CLAIM requests
from any number of ``repro worker`` processes (local or remote) over
the length-prefixed JSON protocol, and folds each RESULT back into the
shared content-addressed store -- atomically, then ledgered as done --
until every point is terminal.

Failure semantics (the contract the tests pin down):

* **worker killed mid-point** -- its TCP connection drops; every point
  assigned on that connection and not yet resulted is requeued
  immediately.  No lease clock is needed for crash recovery because
  the claim dies with the connection.
* **worker hung but connected** -- a worker whose process wedges (or
  whose compute thread deadlocks) keeps its TCP connection alive, so
  connection-drop requeue never fires.  With ``lease_timeout`` set,
  every assignment carries a deadline that HEARTBEAT frames refresh;
  a lease that expires is requeued (ledgered as ``requeued``) and the
  point is handed to the next claimant.  A slow worker that still
  heartbeats is never preempted, and terminality is preserved: if the
  ghost's result eventually arrives it is accepted idempotently (the
  content address is the identity), while its late FAILED report is
  ignored (only the current assignee may fail a point).
* **coordinator killed mid-sweep** -- restart it with the same ledger
  and cache: ledger replay marks the finished points ``done`` (their
  results are in the store -- ``done`` is only ever appended *after*
  the atomic store publish), and only unfinished points are handed out
  again -- including points that were ``scheduled`` into the ledger by
  a ``POST /submit`` rather than by this coordinator's own spec file.
  A torn final ledger line is skipped by replay.
* **point raises** -- the worker reports FAILED; the failure is
  terminal (deterministic errors must not ping-pong between workers)
  and surfaces in the summary and the ledger.
* **duplicate results** -- two workers racing on a requeued point both
  store byte-identical content-addressed files; the second RESULT is
  acked as a no-op.

Results are validated before being trusted: the coordinator recomputes
nothing, but it requires the returned key to match the assignment's
spec address (the wire round trip of
:meth:`~repro.scenario.spec.ScenarioSpec.to_json` preserves content
addresses, so a mismatch means a corrupt or confused worker).  A
RESULT-REF frame (the worker published the store file itself on a
shared filesystem) is validated harder: the coordinator re-reads the
file and checks that the stored spec's recomputed content address and
the stored result's key both match the assignment before ledgering
``done``.

``watch=True`` turns the coordinator from a one-sweep process into a
resident service: it tails the ledger for ``scheduled`` records
appended by ``repro serve``'s ``POST /submit`` endpoint, enqueues the
new points as they land, and keeps serving workers (WAIT frames while
idle) until :meth:`~SweepCoordinator.request_stop`.
"""

from __future__ import annotations

import asyncio
import collections
import json
import pathlib
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.distributed import faults
from repro.distributed.ledger import (
    EVENT_CANCELLED,
    EVENT_SCHEDULED,
    EVENT_SUBMITTED,
    ShardedLedger,
    SweepLedger,
    open_ledger,
)
from repro.distributed.protocol import (
    ProtocolError,
    read_frame,
    write_frame,
)
from repro.obs import metrics as obs_metrics
from repro.obs.trace import new_trace_id, span as obs_span
from repro.scenario.spec import ScenarioSpec, SweepSpec
from repro.scenario.store import result_path, store_result

__all__ = ["SweepCoordinator"]

_ASSIGNED = obs_metrics.counter(
    "repro_coordinator_assigned_total",
    "Points assigned to workers by this coordinator",
)
_RESULTS = obs_metrics.counter(
    "repro_coordinator_results_total",
    "Results accepted, by arrival kind",
    ("kind",),
)
_REQUEUED = obs_metrics.counter(
    "repro_coordinator_requeued_total",
    "Points reclaimed from workers, by reason",
    ("reason",),
)
_FAILED = obs_metrics.counter(
    "repro_coordinator_failed_total",
    "Points that reached terminal failure",
)
_PUBLISH_RETRIES = obs_metrics.counter(
    "repro_coordinator_publish_retries_total",
    "Store publishes that failed and requeued their point",
)
_COMPACTIONS = obs_metrics.counter(
    "repro_ledger_compactions_total",
    "Sharded-ledger compactions run by this process",
)
_PENDING = obs_metrics.gauge(
    "repro_coordinator_pending",
    "Points currently queued, awaiting assignment",
)
_IN_FLIGHT = obs_metrics.gauge(
    "repro_coordinator_in_flight",
    "Points currently assigned to a worker",
)

#: Seconds a worker is told to sleep when every point is in flight.
WAIT_DELAY = 0.2

#: Seconds between ledger-tail polls in ``watch`` mode.
WATCH_POLL_INTERVAL = 0.25

#: Publish attempts per point before a store failure becomes terminal.
#: Covers a transient hiccup (flaky NFS, momentary disk pressure)
#: without letting a deterministic one (unwritable cache dir, a
#: version-skewed worker whose payload shape cannot rebuild) requeue
#: and recompute the same point forever.
PUBLISH_RETRY_LIMIT = 3


@dataclass
class _Connection:
    """Live per-connection state shared with the lease sweeper."""

    writer: asyncio.StreamWriter
    worker: str = "<anonymous>"
    assigned: set[str] = field(default_factory=set)


class SweepCoordinator:
    """Coordinates one sweep across any number of connected workers.

    ``points`` is a :class:`~repro.scenario.spec.SweepSpec` or an
    iterable of expanded specs; ``cache_dir`` is the shared
    content-addressed store every result lands in; ``ledger_path``
    (optional but recommended) makes the queue durable and the sweep
    crash-resumable.  ``host``/``port`` bind the TCP endpoint
    (``port=0`` picks a free port, published as :attr:`port` once
    :attr:`ready` is set -- a ``threading.Event``, so a driver thread
    can wait for the bind without touching the event loop).

    ``lease_timeout`` (seconds, ``None`` = disabled) bounds how long an
    assignment may go without a HEARTBEAT or terminal frame before it
    is requeued; ``watch=True`` keeps the coordinator alive after the
    queue drains, tailing the ledger for points scheduled by ``POST
    /submit`` (requires ``ledger_path``).

    Run with ``await serve()`` inside an event loop or the blocking
    :meth:`run`; :meth:`request_stop` (thread-safe) ends the serve loop
    early, leaving pending points for a resumed coordinator.
    """

    def __init__(
        self,
        points: SweepSpec | Iterable[ScenarioSpec],
        *,
        cache_dir: str | pathlib.Path,
        ledger_path: str | pathlib.Path | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        await_workers: int = 0,
        lease_timeout: float | None = None,
        watch: bool = False,
        poll_interval: float = WATCH_POLL_INTERVAL,
        compact_tail_bytes: int | None = None,
    ) -> None:
        self._specs = (
            points.expand() if isinstance(points, SweepSpec) else list(points)
        )
        self._by_key: dict[str, ScenarioSpec] = {
            spec.key(): spec for spec in self._specs
        }
        self._cache_dir = pathlib.Path(cache_dir)
        self._ledger_path = (
            pathlib.Path(ledger_path) if ledger_path is not None else None
        )
        self._host = host
        self._requested_port = port
        self.port: int | None = None
        self.ready = threading.Event()
        self._pending: collections.deque[str] = collections.deque()
        self._done: set[str] = set()
        self._failed: dict[str, str] = {}
        self._in_flight: dict[str, str] = {}
        self._resumed = 0
        self._from_cache = 0
        self._computed_by: collections.Counter[str] = collections.Counter()
        self._publish_retries: collections.Counter[str] = (
            collections.Counter()
        )
        self._ledger: SweepLedger | ShardedLedger | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._complete: asyncio.Event | None = None
        self._stopped = False
        self._connections: set[asyncio.StreamWriter] = set()
        self._handlers: set[asyncio.Task] = set()
        if lease_timeout is not None and lease_timeout <= 0:
            raise ValueError(
                f"lease_timeout must be positive, got {lease_timeout}"
            )
        if watch and ledger_path is None:
            raise ValueError("watch mode requires a ledger_path")
        self._lease_timeout = lease_timeout
        self._watch = bool(watch)
        self._poll_interval = float(poll_interval)
        # Per-key lease bookkeeping (only populated when leases are on):
        # the deadline clock plus the connection holding the assignment,
        # so the sweeper can strip an expired key from the right set.
        self._lease_deadline: dict[str, float] = {}
        self._assigned_conn: dict[str, _Connection] = {}
        self._lease_requeued: collections.Counter[str] = (
            collections.Counter()
        )
        # Ledger-tail cursor (complete lines only; a torn tail stays
        # unconsumed): a byte offset for the single-file layout, a
        # per-shard offset map for the sharded one -- opaque here, the
        # ledger's read_tail owns its meaning.
        self._tail_cursor: Any = None
        # Cancellation: revoked point keys (subset of _by_key), the
        # sweeps already seen cancelled, and each submitted sweep's
        # membership (needed to resolve a cancel to keys).
        self._cancelled: set[str] = set()
        self._cancelled_sweeps: set[str] = set()
        self._sweep_keys: dict[str, tuple[str, ...]] = {}
        # Telemetry trace id per key: learned from the ledger (the
        # submit service mints one per sweep), minted here for the
        # points of this coordinator's own spec file.  Carried on
        # every ASSIGN frame and every lifecycle ledger record.
        self._trace_by_key: dict[str, str] = {}
        # Compact the sharded ledger whenever its uncompacted shard
        # bytes exceed this (None disables; ignored for file ledgers).
        if compact_tail_bytes is not None and compact_tail_bytes <= 0:
            raise ValueError(
                f"compact_tail_bytes must be positive, "
                f"got {compact_tail_bytes}"
            )
        self._compact_tail_bytes = compact_tail_bytes
        # Gang start: hold assignments until this many distinct workers
        # have connected (0 = assign immediately).  Benchmarks use it so
        # the measured window is pure N-worker compute, not process boot.
        self._await_workers = int(await_workers)
        self._helloed: set[str] = set()
        self._first_assign_time: float | None = None
        self._complete_time: float | None = None

    # -- lifecycle ----------------------------------------------------------

    def run(self) -> dict[str, Any]:
        """Blocking entry point: ``asyncio.run(self.serve())``."""
        return asyncio.run(self.serve())

    def request_stop(self) -> None:
        """Thread-safe early stop (pending points stay in the ledger)."""
        self._stopped = True
        if self._loop is not None and self._complete is not None:
            self._loop.call_soon_threadsafe(self._complete.set)

    async def serve(self) -> dict[str, Any]:
        """Serve workers until every point is terminal; return a summary."""
        started = time.perf_counter()
        self._loop = asyncio.get_running_loop()
        self._complete = asyncio.Event()
        if self._ledger_path is not None:
            self._ledger = open_ledger(self._ledger_path)
        background: list[asyncio.Task] = []
        try:
            self._build_queue()
            self._maybe_compact()
            self._maybe_complete()
            server = await asyncio.start_server(
                self._handle_worker, self._host, self._requested_port
            )
            self.port = server.sockets[0].getsockname()[1]
            if self._watch:
                background.append(
                    self._loop.create_task(self._tail_ledger_task())
                )
            if self._lease_timeout is not None:
                background.append(
                    self._loop.create_task(self._lease_sweeper())
                )
            self.ready.set()
            try:
                await self._complete.wait()
            finally:
                for task in background:
                    task.cancel()
                if background:
                    await asyncio.gather(
                        *background, return_exceptions=True
                    )
                server.close()
                await server.wait_closed()
                # Drain handlers gracefully: closing each connection
                # lands its reader on EOF, so no task dies mid-frame.
                for writer in list(self._connections):
                    writer.close()
                if self._handlers:
                    await asyncio.gather(
                        *self._handlers, return_exceptions=True
                    )
        finally:
            if self._ledger is not None:
                self._ledger.close()
        return self._summary(time.perf_counter() - started)

    def _maybe_complete(self) -> None:
        """End the serve loop when the queue drains (never in watch
        mode -- a resident coordinator waits for the next submit)."""
        if self._complete is None:
            return
        if self._stopped or (
            not self._watch and self._outstanding() == 0
        ):
            self._complete.set()

    # -- queue construction -------------------------------------------------

    def _build_queue(self) -> None:
        """Fold the ledger and the store into the initial queue.

        Order of trust: a ledgered ``done`` is authoritative (the store
        publish precedes it); a cache file for a never-ledgered point
        (e.g. from an earlier serial run) is equally final -- the
        content address *is* the result identity.  Everything else is
        pending, ledger claims included (stale by construction).
        """
        previously_done: set[str] = set()
        if self._ledger is not None:
            state = self._ledger.replay()
            previously_done = state.done
            self._trace_by_key.update(state.traces)
            # The ledger is the durable queue, not a mirror of this
            # coordinator's spec file: points scheduled into it by a
            # ``POST /submit`` (or a predecessor run over a different
            # grid) are adopted here, so a killed coordinator resumes
            # mid-submitted-sweep with nothing but the ledger.  Keys
            # already terminal in the ledger are left alone -- in
            # particular a spec a previous resume ledgered as
            # unresolvable must not be re-adopted (and re-ledgered as
            # failed) on every restart.
            for key, wire in state.scheduled.items():
                if key in self._by_key or not wire:
                    continue
                if key in state.failed:
                    continue
                self._adopt_spec(key, wire)
            # Ledgered failures are terminal across restarts too: a
            # resumed coordinator must not re-queue a deterministic
            # failure (or hang waiting on it when no workers attach).
            self._failed.update(
                {
                    key: error
                    for key, error in state.failed.items()
                    if key in self._by_key
                }
            )
            # Cancellations are absorbing across restarts: a resumed
            # coordinator must not hand out points of a revoked sweep.
            self._sweep_keys.update(state.sweeps)
            for sweep in state.cancelled:
                self._apply_cancel(sweep)
            # Stale claims die with the predecessor's connections, so
            # replay already treats them as pending -- but the timeline
            # deserves the attribution, so each one gets a durable
            # requeued record naming the worker whose claim a restart
            # reclaimed.
            for key, worker in state.claims.items():
                if (
                    key not in self._by_key
                    or key in state.done
                    or key in state.failed
                    or key in self._cancelled
                ):
                    continue
                self._ledger.record_requeued(
                    key,
                    worker,
                    reason="coordinator-restart",
                    trace=self._trace_by_key.get(key),
                )
                _REQUEUED.inc(reason="coordinator-restart")
            self._mint_traces()
            self._ledger.record_scheduled(
                self._specs,
                already_scheduled=set(state.scheduled),
                traces=self._trace_by_key,
            )
        else:
            self._mint_traces()
        queued: set[str] = set()
        for spec in self._specs:
            key = spec.key()
            if key in self._done or key in queued:
                continue  # duplicate grid point
            # Existence is completion: the store only ever publishes
            # whole files (atomic os.replace), so no payload parsing is
            # needed to build the queue -- and a readable result always
            # outranks a ledgered failure (the content address *is* the
            # result identity, however it got computed).  The check
            # also guards the one crash window the ledger cannot see:
            # a power loss after the fsynced "done" line but before the
            # renamed store file's directory entry reached disk.
            have_result = result_path(self._cache_dir, spec).exists()
            if key in previously_done and have_result:
                self._done.add(key)
                self._resumed += 1
            elif have_result:
                self._failed.pop(key, None)
                self._done.add(key)
                self._from_cache += 1
                if self._ledger is not None:
                    self._ledger.record_done(
                        key,
                        worker="cache",
                        trace=self._trace_by_key.get(key),
                    )
                _RESULTS.inc(kind="cache")
            elif key in self._failed:
                continue  # terminal failure with no result to trust
            elif key in self._cancelled:
                continue  # revoked sweep: never queued again
            else:
                queued.add(key)
                self._pending.append(key)
        self._update_queue_gauges()

    def _mint_traces(self) -> None:
        """One trace id per coordinator run for untraced spec-file
        points (submitted sweeps arrive with their own, minted by the
        service -- first writer wins, so a resumed run keeps ids)."""
        untraced = [
            spec.key()
            for spec in self._specs
            if spec.key() not in self._trace_by_key
        ]
        if untraced:
            run_trace = new_trace_id()
            for key in untraced:
                self._trace_by_key[key] = run_trace

    def _update_queue_gauges(self) -> None:
        _PENDING.set(len(self._pending))
        _IN_FLIGHT.set(len(self._in_flight))

    def _outstanding(self) -> int:
        # Cancelled keys are terminal for completion purposes (the
        # sets can overlap: a point can finish, then its sweep be
        # cancelled -- count each key once).
        revoked = sum(
            1
            for key in self._cancelled
            if key not in self._done and key not in self._failed
        )
        return (
            len(self._by_key)
            - len(self._done)
            - len(self._failed)
            - revoked
        )

    # -- per-connection protocol loop ---------------------------------------

    async def _handle_worker(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        conn = _Connection(writer=writer)
        task = asyncio.current_task()
        if task is not None:
            self._handlers.add(task)
        self._connections.add(writer)
        try:
            while True:
                try:
                    message = await read_frame(reader)
                except ProtocolError:
                    break  # torn connection: requeue via finally
                if message is None:
                    break
                kind = message.get("type")
                try:
                    if kind == "hello":
                        conn.worker = str(message.get("worker", conn.worker))
                        self._helloed.add(conn.worker)
                    elif kind == "claim":
                        await self._assign(conn)
                    elif kind == "result":
                        await self._accept_result(conn, message)
                    elif kind == "result-ref":
                        await self._accept_result(conn, message, by_ref=True)
                    elif kind == "failed":
                        self._accept_failure(conn, message)
                    elif kind == "heartbeat":
                        # Keeps the TCP connection observably alive
                        # through NATs/idle timeouts during a long
                        # point -- and, with leases on, proves the
                        # worker is still computing: every point
                        # assigned over this connection gets a fresh
                        # deadline.
                        self._refresh_leases(conn)
                    else:
                        await write_frame(
                            writer,
                            {
                                "type": "error",
                                "error": f"unknown type {kind!r}",
                            },
                        )
                except (ConnectionError, OSError):
                    raise
                except Exception as error:  # noqa: BLE001 -- hostile input
                    # A malformed message must not take the handler (and
                    # with it this worker's claims) down silently.
                    await write_frame(
                        writer,
                        {
                            "type": "error",
                            "error": f"{type(error).__name__}: {error}",
                        },
                    )
        except (ConnectionError, OSError):
            pass  # torn transport: identical to EOF, claims requeue below
        finally:
            self._connections.discard(writer)
            if task is not None:
                self._handlers.discard(task)
            # A dropped connection releases its claims instantly.
            for key in conn.assigned:
                self._release_lease(key)
                self._in_flight.pop(key, None)
                if (
                    key not in self._done
                    and key not in self._failed
                    and key not in self._cancelled
                ):
                    self._pending.append(key)
                    # Durable attribution: the timeline (and a replayed
                    # /metrics) can pin the retry on the worker whose
                    # connection died.
                    if self._ledger is not None:
                        self._ledger.record_requeued(
                            key,
                            conn.worker,
                            reason="connection-lost",
                            trace=self._trace_by_key.get(key),
                        )
                    _REQUEUED.inc(reason="connection-lost")
            self._update_queue_gauges()
            self._maybe_complete()
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    async def _assign(self, conn: _Connection) -> None:
        if len(self._helloed) < self._await_workers:
            await write_frame(
                conn.writer, {"type": "wait", "delay": WAIT_DELAY}
            )
            return
        while self._pending:
            key = self._pending.popleft()
            if key in self._done or key in self._failed:
                continue  # satisfied while queued (duplicate result)
            if key in self._cancelled:
                continue  # revoked while queued
            if key in self._in_flight:
                continue  # requeued twice (drop + lease race)
            faults.inject("coordinator.assign", key)
            if self._first_assign_time is None:
                self._first_assign_time = time.perf_counter()
            self._in_flight[key] = conn.worker
            conn.assigned.add(key)
            if self._lease_timeout is not None:
                self._lease_deadline[key] = (
                    time.monotonic() + self._lease_timeout
                )
                self._assigned_conn[key] = conn
            if self._ledger is not None:
                self._ledger.record_claimed(
                    key, conn.worker, trace=self._trace_by_key.get(key)
                )
            _ASSIGNED.inc()
            self._update_queue_gauges()
            assign_frame: dict[str, Any] = {
                "type": "assign",
                "key": key,
                "spec": self._by_key[key].to_dict(),
            }
            trace = self._trace_by_key.get(key)
            if trace is not None:
                assign_frame["trace"] = trace
            await write_frame(conn.writer, assign_frame)
            return
        if not self._stopped and (self._outstanding() > 0 or self._watch):
            await write_frame(
                conn.writer, {"type": "wait", "delay": WAIT_DELAY}
            )
        else:
            await write_frame(conn.writer, {"type": "shutdown"})

    # -- leases --------------------------------------------------------------

    def _refresh_leases(self, conn: _Connection) -> None:
        """A heartbeat proves the whole connection's work is alive."""
        if self._lease_timeout is None:
            return
        deadline = time.monotonic() + self._lease_timeout
        for key in conn.assigned:
            if key in self._lease_deadline:
                self._lease_deadline[key] = deadline

    def _release_lease(self, key: str) -> None:
        self._lease_deadline.pop(key, None)
        self._assigned_conn.pop(key, None)

    async def _lease_sweeper(self) -> None:
        """Requeue assignments whose deadline passed unheartbeaten.

        Runs well inside the timeout (quarter-period ticks) so an
        expiry is noticed within ~1.25 leases worst case.  The expired
        key is stripped from its connection's assignment set *before*
        it re-enters the queue -- the ghost worker's late FAILED frame
        then misses the only-the-assignee-may-fail gate, while its
        late RESULT (content-addressed, byte-identical) is still
        welcome.
        """
        interval = max(self._lease_timeout / 4.0, 0.01)
        while True:
            await asyncio.sleep(interval)
            now = time.monotonic()
            for key, deadline in list(self._lease_deadline.items()):
                if deadline > now:
                    continue
                conn = self._assigned_conn.get(key)
                self._release_lease(key)
                worker = self._in_flight.pop(key, "?")
                if conn is not None:
                    conn.assigned.discard(key)
                if (
                    key in self._done
                    or key in self._failed
                    or key in self._cancelled
                ):
                    continue
                self._lease_requeued[key] += 1
                self._pending.append(key)
                if self._ledger is not None:
                    self._ledger.record_requeued(
                        key,
                        worker,
                        reason="lease-expired",
                        trace=self._trace_by_key.get(key),
                    )
                _REQUEUED.inc(reason="lease-expired")
                self._update_queue_gauges()

    # -- watch mode: the ledger is the inbox ---------------------------------

    async def _tail_ledger_task(self) -> None:
        while True:
            await asyncio.sleep(self._poll_interval)
            self._ingest_ledger_tail()
            self._maybe_compact()

    def _ingest_ledger_tail(self) -> None:
        """Ingest records appended to the ledger since the last poll.

        ``scheduled`` records are adopted into the queue,
        ``submitted`` records teach sweep membership, ``cancelled``
        records revoke a sweep's live points.  The writers append
        whole lines (``O_APPEND``), so the ledger's tail cursor
        consumes complete lines only and leaves a torn final line for
        the next poll.  Events this coordinator wrote itself come back
        through here too; they are skipped by key (already known),
        which is also what makes the first poll -- re-skimming what
        ``_build_queue`` replayed -- a cheap no-op.
        """
        assert self._ledger is not None
        records, self._tail_cursor = self._ledger.read_tail(
            self._tail_cursor
        )
        for record in records:
            event = record.get("event")
            if event == EVENT_SUBMITTED:
                sweep = record.get("sweep")
                keys = record.get("keys")
                if isinstance(sweep, str) and isinstance(keys, list):
                    self._sweep_keys[sweep] = tuple(
                        str(key) for key in keys
                    )
                    if sweep in self._cancelled_sweeps:
                        # Membership arrived after the cancel (shard
                        # interleaving): revoke now that it resolves.
                        self._apply_cancel(sweep)
                continue
            if event == EVENT_CANCELLED:
                sweep = record.get("sweep")
                if isinstance(sweep, str):
                    self._apply_cancel(sweep)
                continue
            if event != EVENT_SCHEDULED:
                continue
            wire = record.get("spec")
            key = record.get("key")
            if (
                not isinstance(wire, dict)
                or not wire
                or not isinstance(key, str)
                or key in self._by_key
            ):
                continue
            spec = self._adopt_spec(key, wire)
            if spec is None:
                continue
            trace = record.get("trace")
            if isinstance(trace, str):
                self._trace_by_key.setdefault(key, trace)
            if result_path(self._cache_dir, spec).exists():
                # Someone already computed this point (a serial run, a
                # previous sweep): existence is completion.
                self._done.add(spec.key())
                self._from_cache += 1
                if self._ledger is not None:
                    self._ledger.record_done(
                        spec.key(),
                        worker="cache",
                        trace=self._trace_by_key.get(key),
                    )
                _RESULTS.inc(kind="cache")
            elif spec.key() in self._cancelled:
                continue  # scheduled after its sweep was revoked
            else:
                self._pending.append(spec.key())
                self._update_queue_gauges()

    def _maybe_compact(self) -> None:
        """Fold the sharded ledger into its snapshot once the
        uncompacted shard bytes cross the threshold.

        Inline on the event loop: the work is bounded by the threshold
        itself (we compact *because* the tail just crossed it), and
        appends in this process serialize against the fold anyway.
        """
        if self._compact_tail_bytes is None or not isinstance(
            self._ledger, ShardedLedger
        ):
            return
        if self._ledger.tail_size() >= self._compact_tail_bytes:
            self._ledger.compact()
            _COMPACTIONS.inc()

    def _apply_cancel(self, sweep: str) -> None:
        """Revoke every live point of ``sweep`` (absorbing, idempotent).

        Leases are released and in-flight markers dropped so nothing
        stays "leased" after a cancel; a result already computed for a
        revoked key is acked-but-ignored in :meth:`_accept_result`.
        """
        self._cancelled_sweeps.add(sweep)
        for key in self._sweep_keys.get(sweep, ()):
            if key not in self._by_key:
                continue
            if (
                key in self._done
                or key in self._failed
                or key in self._cancelled
            ):
                continue
            self._cancelled.add(key)
            conn = self._assigned_conn.get(key)
            if conn is not None:
                conn.assigned.discard(key)
            self._release_lease(key)
            self._in_flight.pop(key, None)
        self._maybe_complete()

    def _adopt_spec(
        self, key: str, wire: dict[str, Any]
    ) -> ScenarioSpec | None:
        """Register a ledger-scheduled spec this coordinator was not
        constructed with.

        A wire spec this build cannot rebuild (version skew between
        the submitting service and this coordinator) is ledgered as a
        terminal failure -- visible in ``/progress`` -- instead of
        crashing the queue or silently stranding the point as
        forever-pending.
        """
        try:
            spec = ScenarioSpec.from_dict(wire)
        except Exception as error:  # noqa: BLE001 -- foreign input
            if self._ledger is not None:
                self._ledger.record_failed(
                    key,
                    "coordinator",
                    f"unresolvable scheduled spec "
                    f"({type(error).__name__}: {error})",
                )
            return None
        self._specs.append(spec)
        self._by_key[spec.key()] = spec
        return spec

    async def _accept_result(
        self,
        conn: _Connection,
        message: dict[str, Any],
        by_ref: bool = False,
    ) -> None:
        from repro.scenario.backends import ScenarioResult

        writer = conn.writer
        worker = conn.worker
        assigned = conn.assigned
        key = message.get("key")
        faults.inject(
            "coordinator.result", key if isinstance(key, str) else ""
        )
        spec = self._by_key.get(key)
        payload = message.get("result")
        if isinstance(key, str) and key in self._cancelled:
            # The sweep was revoked while this point computed: drop
            # the result on the floor, idempotently.  stored=False
            # tells the worker not to count it; releasing the claim
            # keeps the connection's books clean.
            if key in assigned:
                assigned.discard(key)
                self._release_lease(key)
                self._in_flight.pop(key, None)
            await write_frame(
                writer, {"type": "ack", "key": key, "stored": False}
            )
            return
        if spec is None or (not by_ref and not isinstance(payload, dict)):
            await write_frame(
                writer,
                {"type": "error", "error": f"result for unknown key {key!r}"},
            )
            return
        if not by_ref and payload.get("key") != key:
            await write_frame(
                writer,
                {
                    "type": "error",
                    "error": (
                        f"result key {payload.get('key')!r} does not match "
                        f"assignment {key!r}"
                    ),
                },
            )
            return
        if key not in self._done:
            elapsed = message.get("elapsed")
            trace = self._trace_by_key.get(key) or message.get("trace")

            def publish() -> None:
                # Publish first, ledger second: "done" implies readable.
                with obs_span(
                    "coordinator.publish",
                    trace=trace,
                    key=key,
                    worker=worker,
                ):
                    store_result(
                        self._cache_dir,
                        spec,
                        ScenarioResult.from_dict(payload),
                        trace=trace,
                    )
                if self._ledger is not None:
                    self._ledger.record_done(
                        key, worker, elapsed=elapsed, trace=trace
                    )

            def validate_ref() -> None:
                # The worker claims it already published the store
                # file (shared filesystem).  Trust nothing: re-read
                # the file and require both the stored spec's
                # recomputed content address and the stored result's
                # key to equal the assignment, then ledger done.  A
                # missing or mismatched file lands in the retry path
                # exactly like a failed coordinator-side publish.
                path = result_path(self._cache_dir, spec)
                stored = json.loads(path.read_text())
                stored_spec = ScenarioSpec.from_dict(stored["spec"])
                stored_key = stored.get("result", {}).get("key")
                if stored_spec.key() != key or stored_key != key:
                    raise ValueError(
                        f"store file {path.name} does not hold the "
                        f"result of {key[:12]}"
                    )
                if self._ledger is not None:
                    self._ledger.record_done(
                        key, worker, elapsed=elapsed, trace=trace
                    )

            try:
                # Off the event loop: the store publish and the ledger
                # append both fsync, and other workers' claims must not
                # queue behind disk flushes.
                await asyncio.get_running_loop().run_in_executor(
                    None, validate_ref if by_ref else publish
                )
            except Exception as error:  # noqa: BLE001 -- bad payload/disk
                # The point must stay claimable -- dropping it from
                # every queue here would hang the sweep forever.  Only
                # the assignee's claim is released: a non-assignee's
                # broken payload must not requeue (and double-run) a
                # point that its real owner is still computing.
                if key in assigned:
                    assigned.discard(key)
                    self._release_lease(key)
                    self._in_flight.pop(key, None)
                    self._publish_retries[key] += 1
                    _PUBLISH_RETRIES.inc()
                    if self._publish_retries[key] >= PUBLISH_RETRY_LIMIT:
                        # Persistent: recompute/republish cycles would
                        # livelock the fleet.  Terminal failure.
                        detail = (
                            f"result not storable after "
                            f"{PUBLISH_RETRY_LIMIT} attempts "
                            f"({type(error).__name__}: {error})"
                        )
                        self._failed[key] = detail
                        if self._ledger is not None:
                            self._ledger.record_failed(
                                key, worker, detail, trace=trace
                            )
                        _FAILED.inc()
                        if self._outstanding() == 0:
                            self._complete_time = time.perf_counter()
                        self._update_queue_gauges()
                        self._maybe_complete()
                        await write_frame(
                            writer,
                            {"type": "ack", "key": key, "stored": False},
                        )
                        return
                    self._pending.append(key)
                    self._update_queue_gauges()
                await write_frame(
                    writer,
                    {
                        "type": "error",
                        # Retryable: the worker did nothing wrong (e.g.
                        # transient disk pressure) and must keep
                        # claiming rather than die -- the point is back
                        # in the queue precisely so someone retries it.
                        "retryable": True,
                        "error": (
                            f"result for {key[:12]} not stored "
                            f"({type(error).__name__}: {error}); requeued"
                        ),
                    },
                )
                return
            # A real result supersedes a racing worker's failure report
            # (and keeps done/failed disjoint, the _outstanding
            # invariant).
            self._failed.pop(key, None)
            self._done.add(key)
            self._computed_by[worker] += 1
            _RESULTS.inc(kind="result-ref" if by_ref else "result")
        if key in assigned:
            assigned.discard(key)
            self._release_lease(key)
            self._in_flight.pop(key, None)
        if self._outstanding() == 0:
            self._complete_time = time.perf_counter()
        self._update_queue_gauges()
        self._maybe_complete()
        await write_frame(writer, {"type": "ack", "key": key})

    def _accept_failure(
        self, conn: _Connection, message: dict[str, Any]
    ) -> None:
        key = message.get("key")
        if (
            not isinstance(key, str)
            or key not in conn.assigned  # only the assignee may fail a point
            or key in self._done
            or key in self._failed
            or key in self._cancelled  # revoked: the failure is moot
        ):
            return
        conn.assigned.discard(key)
        self._release_lease(key)
        self._in_flight.pop(key, None)
        error = str(message.get("error", "unknown error"))
        self._failed[key] = error
        if self._ledger is not None:
            self._ledger.record_failed(
                key, conn.worker, error, trace=self._trace_by_key.get(key)
            )
        _FAILED.inc()
        self._update_queue_gauges()
        if self._outstanding() == 0:
            # The compute window closes on the last *terminal* event,
            # successful or not.
            self._complete_time = time.perf_counter()
        self._maybe_complete()

    # -- reporting ----------------------------------------------------------

    def _summary(self, elapsed: float) -> dict[str, Any]:
        compute_elapsed = None
        if (
            self._first_assign_time is not None
            and self._complete_time is not None
        ):
            compute_elapsed = self._complete_time - self._first_assign_time
        return {
            # Wall time from the first assignment to the last result:
            # the pure N-worker compute window (None if nothing ran).
            "compute_elapsed_seconds": compute_elapsed,
            "total": len(self._by_key),
            "done": len(self._done),
            "failed": dict(self._failed),
            "pending": self._outstanding(),
            "computed": sum(self._computed_by.values()),
            "resumed_from_ledger": self._resumed,
            "from_cache": self._from_cache,
            "lease_requeued": sum(self._lease_requeued.values()),
            "cancelled": len(self._cancelled),
            "watch": self._watch,
            "workers": dict(self._computed_by),
            "elapsed_seconds": elapsed,
            "cache_dir": str(self._cache_dir),
            "ledger": (
                str(self._ledger_path)
                if self._ledger_path is not None
                else None
            ),
        }
