"""Minimal deterministic discrete-event engine.

``simpy`` is not available in the offline environment, so the engine is
implemented from scratch: a heap-ordered event queue with stable
tie-breaking (insertion order), callback actions and optional periodic
processes.  It is deliberately small -- the simulations in this package
only need ordered timed callbacks -- but fully deterministic, which the
reproducibility tests rely on.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable


class SimulationError(RuntimeError):
    """Raised on scheduling misuse (past events, negative delays)."""


@dataclass(order=True)
class _ScheduledEvent:
    time: float
    sequence: int
    action: Callable[[], None] = field(compare=False)
    name: str = field(compare=False, default="")
    cancelled: bool = field(compare=False, default=False)


class EventHandle:
    """Returned by ``schedule``; allows cancellation."""

    def __init__(self, event: _ScheduledEvent) -> None:
        self._event = event

    def cancel(self) -> None:
        """Prevent the event from firing (no-op if already fired)."""
        self._event.cancelled = True

    @property
    def time(self) -> float:
        """Scheduled firing time."""
        return self._event.time

    @property
    def name(self) -> str:
        """Event label (diagnostics)."""
        return self._event.name


class DiscreteEventEngine:
    """Heap-based event loop with a monotonic clock."""

    def __init__(self) -> None:
        self._queue: list[_ScheduledEvent] = []
        self._now = 0.0
        self._counter = itertools.count()
        self._fired = 0

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def pending(self) -> int:
        """Number of events still queued (including cancelled ones)."""
        return len(self._queue)

    @property
    def events_fired(self) -> int:
        """Number of events executed so far."""
        return self._fired

    def schedule_at(
        self, time: float, action: Callable[[], None], name: str = ""
    ) -> EventHandle:
        """Schedule ``action`` at absolute ``time`` (>= now)."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time}; clock already at {self._now}"
            )
        event = _ScheduledEvent(
            time=time, sequence=next(self._counter), action=action, name=name
        )
        heapq.heappush(self._queue, event)
        return EventHandle(event)

    def schedule_after(
        self, delay: float, action: Callable[[], None], name: str = ""
    ) -> EventHandle:
        """Schedule ``action`` after a non-negative ``delay``."""
        if delay < 0:
            raise SimulationError(f"delay must be >= 0, got {delay}")
        return self.schedule_at(self._now + delay, action, name)

    def schedule_periodic(
        self,
        period: float,
        action: Callable[[], None],
        name: str = "",
        first_at: float | None = None,
    ) -> Callable[[], None]:
        """Fire ``action`` every ``period`` units; returns a stopper."""
        if period <= 0:
            raise SimulationError(f"period must be positive, got {period}")
        stopped = False

        def tick() -> None:
            if stopped:
                return
            action()
            self.schedule_after(period, tick, name)

        start = self._now + period if first_at is None else first_at
        self.schedule_at(start, tick, name)

        def stop() -> None:
            nonlocal stopped
            stopped = True

        return stop

    def step(self) -> bool:
        """Execute the next event; ``False`` when the queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = event.time
            event.action()
            self._fired += 1
            return True
        return False

    def run_until(self, time: float, max_events: int | None = None) -> int:
        """Run events with firing time ``<= time``; returns the count.

        ``max_events`` guards against runaway self-rescheduling loops.
        """
        executed = 0
        while self._queue:
            head = self._queue[0]
            if head.cancelled:
                heapq.heappop(self._queue)
                continue
            if head.time > time:
                break
            self.step()
            executed += 1
            if max_events is not None and executed >= max_events:
                break
        self._now = max(self._now, time)
        return executed

    def run_all(self, max_events: int = 1_000_000) -> int:
        """Drain the queue entirely (bounded by ``max_events``)."""
        executed = 0
        while self.step():
            executed += 1
            if executed >= max_events:
                raise SimulationError(
                    f"event budget {max_events} exhausted; "
                    "self-rescheduling loop?"
                )
        return executed
