"""Unit tests for the (s, x, y) state space and its partition."""

import pytest

from repro.core.parameters import ModelParameters, ParameterError
from repro.core.statespace import (
    Category,
    State,
    StateSpace,
    StateSpaceError,
    make_state,
)


@pytest.fixture(scope="module")
def space() -> StateSpace:
    return StateSpace(ModelParameters(core_size=7, spare_max=7))


class TestEnumeration:
    def test_full_space_is_288_states(self, space):
        # Figure 1 caption: 288 states for C = 7, Delta = 7.
        assert space.full_space_size == 288

    def test_partition_sizes(self, space):
        assert len(space.safe) == 81
        assert len(space.polluted) == 135
        assert len(space.safe_merge) == 3
        assert len(space.safe_split) == 24
        assert len(space.polluted_merge) == 5
        assert len(space.polluted_split) == 40

    def test_model_size_excludes_unreachable(self, space):
        assert space.model_size == 288 - 40

    def test_partition_covers_everything_disjointly(self, space):
        everything = (
            space.safe
            + space.polluted
            + space.safe_merge
            + space.safe_split
            + space.polluted_merge
            + space.polluted_split
        )
        assert len(everything) == len(set(everything)) == 288

    def test_transient_order_safe_then_polluted(self, space):
        transient = space.transient
        assert transient[: len(space.safe)] == space.safe
        assert transient[len(space.safe) :] == space.polluted

    def test_smaller_space(self):
        small = StateSpace(ModelParameters(core_size=4, spare_max=3))
        # sum over s of (C+1)(s+1) = 5 * (1+2+3+4) = 50.
        assert small.full_space_size == 50


class TestCategorization:
    def test_safe_state(self, space):
        assert space.categorize(State(3, 2, 1)) == Category.SAFE

    def test_polluted_state(self, space):
        assert space.categorize(State(3, 3, 0)) == Category.POLLUTED

    def test_safe_merge(self, space):
        assert space.categorize(State(0, 2, 0)) == Category.SAFE_MERGE

    def test_polluted_merge(self, space):
        assert space.categorize(State(0, 7, 0)) == Category.POLLUTED_MERGE

    def test_safe_split(self, space):
        assert space.categorize(State(7, 0, 5)) == Category.SAFE_SPLIT

    def test_polluted_split_is_unreachable_class(self, space):
        assert space.categorize(State(7, 5, 2)) == Category.POLLUTED_SPLIT

    def test_transient_flags(self):
        assert Category.SAFE.is_transient
        assert Category.POLLUTED.is_transient
        assert not Category.SAFE_MERGE.is_transient
        assert Category.SAFE_SPLIT.is_closed

    def test_is_transient_helper(self, space):
        assert space.is_transient(State(1, 0, 0))
        assert not space.is_transient(State(0, 0, 0))


class TestValidationAndIndexing:
    def test_contains_rejects_y_above_s(self, space):
        assert not space.contains(State(2, 0, 3))

    def test_validate_raises(self, space):
        with pytest.raises(StateSpaceError, match="outside"):
            space.validate(State(8, 0, 0))

    def test_index_roundtrip(self, space):
        for state in space.model_states:
            assert space.model_states[space.index_of(state)] == state

    def test_index_rejects_unreachable(self, space):
        with pytest.raises(StateSpaceError, match="unreachable"):
            space.index_of(State(7, 7, 0))

    def test_initial_spare_size(self, space):
        assert space.initial_spare_size() == 3

    def test_describe_mentions_omega(self, space):
        assert "|Omega|=288" in space.describe()

    def test_make_state_checks(self):
        assert make_state(2, 1, 1) == State(2, 1, 1)
        with pytest.raises(ParameterError):
            make_state(1, 0, 2)
        with pytest.raises(ParameterError):
            make_state(-1, 0, 0)
