"""A validated finite discrete-time Markov chain with labeled states.

:class:`MarkovChain` is the convenience wrapper used across the
reproduction: it stores the transition matrix together with hashable
state labels, exposes classification and partitioning helpers, computes
transient laws, and can simulate trajectories with a seeded generator.
"""

from __future__ import annotations

from collections.abc import Hashable, Sequence

import numpy as np

from repro.markov import classify
from repro.markov.linalg import (
    MarkovNumericsError,
    as_square_array,
    stochastic_check,
)


class MarkovChain:
    """Finite DTMC over labeled states.

    Parameters
    ----------
    matrix:
        Right-stochastic square matrix.
    labels:
        Optional sequence of hashable labels, one per state; defaults to
        ``range(n)``.  Labels give the cluster model readable states
        such as ``(s, x, y)`` tuples.
    """

    def __init__(
        self,
        matrix: np.ndarray,
        labels: Sequence[Hashable] | None = None,
    ) -> None:
        arr = as_square_array(matrix)
        stochastic_check(arr)
        self._matrix = arr
        if labels is None:
            labels = list(range(arr.shape[0]))
        labels = list(labels)
        if len(labels) != arr.shape[0]:
            raise MarkovNumericsError(
                f"{len(labels)} labels for {arr.shape[0]} states"
            )
        if len(set(labels)) != len(labels):
            raise MarkovNumericsError("state labels must be unique")
        self._labels = labels
        self._index = {label: i for i, label in enumerate(labels)}

    # -- basic accessors -------------------------------------------------

    @property
    def matrix(self) -> np.ndarray:
        """The transition matrix (read-only view)."""
        view = self._matrix.view()
        view.flags.writeable = False
        return view

    @property
    def labels(self) -> list[Hashable]:
        """State labels in index order."""
        return list(self._labels)

    @property
    def n_states(self) -> int:
        """Number of states."""
        return self._matrix.shape[0]

    def index_of(self, label: Hashable) -> int:
        """Index of the state carrying ``label``."""
        try:
            return self._index[label]
        except KeyError:
            raise KeyError(f"unknown state label {label!r}") from None

    def probability(self, source: Hashable, target: Hashable) -> float:
        """One-step transition probability between two labeled states."""
        return float(self._matrix[self.index_of(source), self.index_of(target)])

    # -- classification ----------------------------------------------------

    def absorbing_states(self) -> list[Hashable]:
        """Labels of states with a probability-one self loop."""
        return [self._labels[i] for i in classify.absorbing_states(self._matrix)]

    def recurrent_classes(self) -> list[frozenset[Hashable]]:
        """Closed communicating classes, as label sets."""
        return [
            frozenset(self._labels[i] for i in cls)
            for cls in classify.recurrent_classes(self._matrix)
        ]

    def transient_states(self) -> list[Hashable]:
        """Labels of transient states in index order."""
        return [self._labels[i] for i in classify.transient_states(self._matrix)]

    # -- block extraction ---------------------------------------------------

    def submatrix(
        self, rows: Sequence[Hashable], cols: Sequence[Hashable]
    ) -> np.ndarray:
        """Block of the transition matrix indexed by label sequences."""
        row_idx = [self.index_of(label) for label in rows]
        col_idx = [self.index_of(label) for label in cols]
        return self._matrix[np.ix_(row_idx, col_idx)]

    def indicator(self, members: Sequence[Hashable]) -> np.ndarray:
        """0/1 vector flagging ``members`` over the full state space."""
        flags = np.zeros(self.n_states)
        for label in members:
            flags[self.index_of(label)] = 1.0
        return flags

    # -- transient behaviour -------------------------------------------------

    def distribution_after(
        self, initial: np.ndarray, n_steps: int
    ) -> np.ndarray:
        """Law of the chain after ``n_steps`` from row vector ``initial``."""
        alpha = np.asarray(initial, dtype=float)
        if alpha.shape != (self.n_states,):
            raise MarkovNumericsError(
                f"initial vector has shape {alpha.shape}, "
                f"expected ({self.n_states},)"
            )
        law = alpha.copy()
        for _ in range(n_steps):
            law = law @ self._matrix
        return law

    def hitting_probability_series(
        self, initial: np.ndarray, members: Sequence[Hashable], n_steps: int
    ) -> np.ndarray:
        """``P{X_m in members}`` for ``m = 0 .. n_steps``."""
        flags = self.indicator(members)
        law = np.asarray(initial, dtype=float).copy()
        series = [float(law @ flags)]
        for _ in range(n_steps):
            law = law @ self._matrix
            series.append(float(law @ flags))
        return np.asarray(series)

    # -- simulation ---------------------------------------------------------

    def sample_path(
        self,
        initial: Hashable | np.ndarray,
        n_steps: int,
        rng: np.random.Generator,
    ) -> list[Hashable]:
        """Simulate a trajectory of labels of length ``n_steps + 1``.

        ``initial`` is either a state label or a probability vector from
        which the starting state is drawn.
        """
        if isinstance(initial, np.ndarray) or (
            not isinstance(initial, Hashable) or initial not in self._index
        ):
            law = np.asarray(initial, dtype=float)
            state = int(rng.choice(self.n_states, p=law / law.sum()))
        else:
            state = self.index_of(initial)
        path = [self._labels[state]]
        for _ in range(n_steps):
            state = int(rng.choice(self.n_states, p=self._matrix[state]))
            path.append(self._labels[state])
        return path

    def sample_until(
        self,
        initial: Hashable | np.ndarray,
        absorbing: Sequence[Hashable],
        rng: np.random.Generator,
        max_steps: int = 10_000_000,
    ) -> list[Hashable]:
        """Simulate until one of ``absorbing`` is entered.

        Raises ``RuntimeError`` after ``max_steps`` to protect callers
        against chains that pollute so rarely they effectively never
        absorb within a Monte-Carlo budget.
        """
        stop = {self.index_of(label) for label in absorbing}
        if isinstance(initial, np.ndarray) or (
            not isinstance(initial, Hashable) or initial not in self._index
        ):
            law = np.asarray(initial, dtype=float)
            state = int(rng.choice(self.n_states, p=law / law.sum()))
        else:
            state = self.index_of(initial)
        path = [self._labels[state]]
        for _ in range(max_steps):
            if state in stop:
                return path
            state = int(rng.choice(self.n_states, p=self._matrix[state]))
            path.append(self._labels[state])
        raise RuntimeError(
            f"no absorption within {max_steps} steps; increase the budget"
        )
