"""First-passage (hitting) analysis on Markov chains.

Complements :mod:`repro.markov.fundamental` with distribution-level
results used by the extended analyses:

* probability that a target set is *ever* hit before (non-target)
  absorption,
* the full (defective) phase-type law of the hitting time,
* expected hitting time conditioned on hitting.

The core representation is the *taboo* decomposition: a sub-stochastic
block of transitions among non-target states, plus the one-step entry
probability from each non-target state into the target.  Two
constructors cover the common cases:

* :meth:`HittingAnalysis.from_indicator` -- target is a subset of a
  transient block (every excursion outside the block counts as a miss);
* :meth:`HittingAnalysis.from_components` -- caller supplies taboo and
  entry directly, which lets the target include absorbing classes (the
  cluster model's "ever polluted" includes dissolving *into* a polluted
  closed state).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.markov.linalg import (
    MarkovNumericsError,
    as_square_array,
    solve_fundamental,
    substochastic_check,
)


@dataclass(frozen=True)
class HittingAnalysis:
    """First-passage analysis into a target set.

    Parameters
    ----------
    taboo_block:
        Sub-stochastic transitions among non-target states.
    entry_vector:
        One-step probability of entering the target from each
        non-target state.
    initial_outside:
        Initial mass on each non-target state.
    initial_hit_mass:
        Initial mass already inside the target (hits at time zero).
    """

    taboo_block: np.ndarray
    entry_vector: np.ndarray
    initial_outside: np.ndarray
    initial_hit_mass: float = 0.0

    def __post_init__(self) -> None:
        taboo = as_square_array(self.taboo_block, name="taboo block")
        substochastic_check(taboo)
        entry = np.asarray(self.entry_vector, dtype=float)
        alpha = np.asarray(self.initial_outside, dtype=float)
        if entry.shape != (taboo.shape[0],):
            raise MarkovNumericsError(
                f"entry vector has shape {entry.shape}, expected "
                f"({taboo.shape[0]},)"
            )
        if alpha.shape != (taboo.shape[0],):
            raise MarkovNumericsError(
                f"initial has shape {alpha.shape}, expected "
                f"({taboo.shape[0]},)"
            )
        if np.any(entry < -1e-12) or np.any(entry > 1.0 + 1e-12):
            raise MarkovNumericsError("entry probabilities outside [0, 1]")
        if not -1e-12 <= self.initial_hit_mass <= 1.0 + 1e-12:
            raise MarkovNumericsError(
                f"initial hit mass {self.initial_hit_mass} outside [0, 1]"
            )
        object.__setattr__(self, "taboo_block", taboo)
        object.__setattr__(self, "entry_vector", entry)
        object.__setattr__(self, "initial_outside", alpha)

    # -- constructors -----------------------------------------------------

    @classmethod
    def from_indicator(
        cls,
        transient_block: np.ndarray,
        target_indicator: np.ndarray,
        initial: np.ndarray,
    ) -> "HittingAnalysis":
        """Target = flagged subset of one transient block."""
        block = as_square_array(transient_block, name="transient block")
        flags = np.asarray(target_indicator, dtype=float)
        alpha = np.asarray(initial, dtype=float)
        if flags.shape != (block.shape[0],):
            raise MarkovNumericsError(
                f"indicator has shape {flags.shape}, expected "
                f"({block.shape[0]},)"
            )
        if not set(np.unique(flags)) <= {0.0, 1.0}:
            raise MarkovNumericsError("indicator must be 0/1 valued")
        if alpha.shape != (block.shape[0],):
            raise MarkovNumericsError(
                f"initial has shape {alpha.shape}, expected "
                f"({block.shape[0]},)"
            )
        outside = flags == 0.0
        inside = ~outside
        return cls(
            taboo_block=block[np.ix_(outside, outside)],
            entry_vector=block[np.ix_(outside, inside)].sum(axis=1),
            initial_outside=alpha[outside],
            initial_hit_mass=float(alpha[inside].sum()),
        )

    @classmethod
    def from_components(
        cls,
        taboo_block: np.ndarray,
        entry_vector: np.ndarray,
        initial_outside: np.ndarray,
        initial_hit_mass: float = 0.0,
    ) -> "HittingAnalysis":
        """Explicit taboo/entry decomposition (target may include
        absorbing classes)."""
        return cls(
            taboo_block=taboo_block,
            entry_vector=entry_vector,
            initial_outside=initial_outside,
            initial_hit_mass=initial_hit_mass,
        )

    # -- results ------------------------------------------------------------

    def hit_probability(self) -> float:
        """Probability the target is ever entered."""
        if self.initial_outside.sum() == 0.0:
            return self.initial_hit_mass
        reach = solve_fundamental(self.taboo_block, self.entry_vector)
        return self.initial_hit_mass + float(self.initial_outside @ reach)

    def hitting_time_pmf(self, horizon: int) -> np.ndarray:
        """``P{T_hit = n}`` for ``n = 0 .. horizon`` (defective law).

        The law is defective when non-target absorption can preempt the
        hit; the missing mass is ``1 - hit_probability()``.
        """
        if horizon < 0:
            raise MarkovNumericsError(f"horizon must be >= 0, got {horizon}")
        pmf = np.zeros(horizon + 1)
        pmf[0] = self.initial_hit_mass
        law = self.initial_outside.copy()
        for n in range(1, horizon + 1):
            pmf[n] = float(law @ self.entry_vector)
            law = law @ self.taboo_block
        return pmf

    def hitting_time_survival(self, horizon: int) -> np.ndarray:
        """``P{T_hit > n}`` including the never-hit mass."""
        pmf = self.hitting_time_pmf(horizon)
        return 1.0 - np.cumsum(pmf)

    def expected_hitting_time_given_hit(self) -> float:
        """``E[T_hit | hit]``; raises when the hit has probability 0."""
        probability = self.hit_probability()
        if probability <= 0.0:
            raise MarkovNumericsError(
                "the target set is unreachable from the initial law"
            )
        # E[T 1{hit}] = sum_{n>=1} n alpha taboo^{n-1} entry
        #             = alpha (I - taboo)^{-2} entry.
        first = solve_fundamental(self.taboo_block, self.entry_vector)
        second = solve_fundamental(self.taboo_block, first)
        weighted = float(self.initial_outside @ second)
        return weighted / probability
