"""Greedy prefix routing over the cluster graph.

Each hop corrects the first bit on which the current cluster's label
disagrees with the target identifier, moving to the corresponding
dimension neighbour -- the PeerCube/hypercube discipline, giving
``O(log n)`` hops.  Polluted clusters may drop or misroute messages;
:func:`route` accepts a ``drop_predicate`` so attack experiments can
measure delivery degradation, and :func:`redundant_route` implements
the classical independent-paths mitigation (Castro et al.).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.overlay.cluster import Cluster
from repro.overlay.errors import RoutingError
from repro.overlay.identifiers import has_prefix, to_bit_string
from repro.overlay.topology import PrefixTopology

#: Safety bound on path length; greedy routing corrects one bit per hop
#: so any path longer than the identifier width signals a broken overlay.
MAX_HOPS_FACTOR = 2


@dataclass(frozen=True)
class RouteResult:
    """Outcome of one routing attempt."""

    hops: tuple[Cluster, ...]
    delivered: bool
    dropped_at: Cluster | None = None

    @property
    def hop_count(self) -> int:
        """Number of inter-cluster hops taken."""
        return max(0, len(self.hops) - 1)


def _owns(topology: PrefixTopology, cluster: Cluster, identifier: int) -> bool:
    """True when ``identifier`` falls in any region owned by ``cluster``."""
    return any(
        has_prefix(identifier, region, topology.id_bits)
        for region in topology.regions_of(cluster)
    )


def next_hop(
    topology: PrefixTopology, current: Cluster, target: int
) -> Cluster:
    """The dimension neighbour correcting the first differing bit."""
    label = current.label
    bits = to_bit_string(target, topology.id_bits)
    for index, label_bit in enumerate(label):
        if bits[index] != label_bit:
            return topology.dimension_neighbor(current, index)
    # The primary label is a prefix of the target: the covering says the
    # target is owned by this cluster (or by one of its absorbed regions'
    # owners, which lookup resolves directly).
    return topology.lookup(target)


def route(
    topology: PrefixTopology,
    source: Cluster,
    target: int,
    drop_predicate: Callable[[Cluster], bool] | None = None,
) -> RouteResult:
    """Route greedily from ``source`` to the cluster owning ``target``.

    ``drop_predicate`` models adversarial forwarding: any intermediate
    cluster for which it returns ``True`` silently drops the message
    (the source and the delivery cluster still count as hops taken).
    """
    max_hops = MAX_HOPS_FACTOR * topology.id_bits
    hops = [source]
    current = source
    for _ in range(max_hops):
        if _owns(topology, current, target):
            return RouteResult(hops=tuple(hops), delivered=True)
        if (
            drop_predicate is not None
            and current is not source
            and drop_predicate(current)
        ):
            return RouteResult(
                hops=tuple(hops), delivered=False, dropped_at=current
            )
        following = next_hop(topology, current, target)
        if following is current:
            raise RoutingError(
                f"routing loop at cluster {current.label!r} towards {target}"
            )
        hops.append(following)
        current = following
    raise RoutingError(
        f"no delivery within {max_hops} hops towards {target}; "
        "covering or neighbour tables are inconsistent"
    )


def redundant_route(
    topology: PrefixTopology,
    sources: list[Cluster],
    target: int,
    drop_predicate: Callable[[Cluster], bool] | None = None,
) -> tuple[bool, list[RouteResult]]:
    """Route the same message over several entry clusters.

    Returns ``(any_delivered, per_path_results)`` -- the redundant
    routing defence: delivery succeeds when at least one path avoids
    every dropping cluster.
    """
    if not sources:
        raise RoutingError("redundant routing needs at least one source")
    results = [
        route(topology, source, target, drop_predicate) for source in sources
    ]
    return any(result.delivered for result in results), results


def average_path_length(
    topology: PrefixTopology,
    pairs: list[tuple[Cluster, int]],
) -> float:
    """Mean hop count over ``(source, target identifier)`` probes."""
    if not pairs:
        raise RoutingError("no probe pairs supplied")
    total = 0
    for source, target in pairs:
        total += route(topology, source, target).hop_count
    return total / len(pairs)
