"""Churn event generators.

The analytical model assumes an alternating stream where each event is a
join with probability ``p_j`` and a leave with probability
``p_l = 1 - p_j``, dispatched uniformly over clusters
(Sections III-A and VIII).  This module provides that generator plus two
richer ones (Poisson arrivals with exponential or Pareto session times)
used by the agent-based simulations to check that the conclusions
survive a more realistic churn process.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator

import numpy as np


class EventKind(enum.Enum):
    """Join or leave."""

    JOIN = "join"
    LEAVE = "leave"


@dataclass(frozen=True)
class ChurnEvent:
    """One churn event with its (abstract or simulated) time."""

    kind: EventKind
    time: float


def bernoulli_event_stream(
    rng: np.random.Generator,
    p_join: float = 0.5,
    time_step: float = 1.0,
) -> Iterator[ChurnEvent]:
    """The model's stream: one event per unit of time, join w.p.
    ``p_join`` -- infinite, consume with ``itertools.islice``."""
    if not 0.0 < p_join < 1.0:
        raise ValueError(f"p_join must be in (0, 1), got {p_join}")
    time = 0.0
    while True:
        time += time_step
        kind = EventKind.JOIN if rng.random() < p_join else EventKind.LEAVE
        yield ChurnEvent(kind=kind, time=time)


def poisson_event_stream(
    rng: np.random.Generator,
    join_rate: float,
    leave_rate: float,
) -> Iterator[ChurnEvent]:
    """Superposition of Poisson join and leave processes.

    Inter-event times are exponential with rate ``join_rate +
    leave_rate``; each event is a join with probability
    ``join_rate / (join_rate + leave_rate)``.
    """
    if join_rate <= 0 or leave_rate <= 0:
        raise ValueError(
            f"rates must be positive, got {join_rate}, {leave_rate}"
        )
    total = join_rate + leave_rate
    p_join = join_rate / total
    time = 0.0
    while True:
        time += float(rng.exponential(1.0 / total))
        kind = EventKind.JOIN if rng.random() < p_join else EventKind.LEAVE
        yield ChurnEvent(kind=kind, time=time)


@dataclass(frozen=True)
class SessionPlan:
    """Arrival and departure instants for one synthetic peer."""

    arrival: float
    departure: float

    @property
    def duration(self) -> float:
        """Session length."""
        return self.departure - self.arrival


def exponential_sessions(
    rng: np.random.Generator,
    arrival_rate: float,
    mean_session: float,
    horizon: float,
) -> list[SessionPlan]:
    """Poisson arrivals with exponential session durations."""
    if arrival_rate <= 0 or mean_session <= 0 or horizon <= 0:
        raise ValueError("arrival_rate, mean_session, horizon must be > 0")
    plans = []
    time = 0.0
    while True:
        time += float(rng.exponential(1.0 / arrival_rate))
        if time >= horizon:
            break
        duration = float(rng.exponential(mean_session))
        plans.append(SessionPlan(arrival=time, departure=time + duration))
    return plans


def session_event_stream(
    plans: list[SessionPlan],
) -> Iterator[ChurnEvent]:
    """Flatten session plans into a time-ordered join/leave stream.

    Each plan contributes a :data:`EventKind.JOIN` at its arrival and a
    :data:`EventKind.LEAVE` at its departure; ties resolve joins first
    so a session is always born before it dies.  The stream is finite
    (two events per plan).
    """
    marks = [(plan.arrival, 0, EventKind.JOIN) for plan in plans]
    marks += [(plan.departure, 1, EventKind.LEAVE) for plan in plans]
    for time, _, kind in sorted(marks):
        yield ChurnEvent(kind=kind, time=time)


def pareto_sessions(
    rng: np.random.Generator,
    arrival_rate: float,
    shape: float,
    scale: float,
    horizon: float,
) -> list[SessionPlan]:
    """Poisson arrivals with heavy-tailed (Pareto) session durations.

    Measured P2P traces (e.g. Gnutella/Kad studies) exhibit heavy-tailed
    sessions; this generator is the stand-in for such traces in the
    offline environment (see DESIGN.md, "Substitutions").
    """
    if shape <= 1.0:
        raise ValueError(
            f"shape must exceed 1 for a finite mean, got {shape}"
        )
    if arrival_rate <= 0 or scale <= 0 or horizon <= 0:
        raise ValueError("arrival_rate, scale, horizon must be > 0")
    plans = []
    time = 0.0
    while True:
        time += float(rng.exponential(1.0 / arrival_rate))
        if time >= horizon:
            break
        duration = float(scale * (1.0 + rng.pareto(shape)))
        plans.append(SessionPlan(arrival=time, departure=time + duration))
    return plans


# -- scenario registry entries ----------------------------------------------
#
# Factories share one signature -- ``factory(rng, params, **options) ->
# Iterator[ChurnEvent]`` -- so a :class:`~repro.scenario.spec.ScenarioSpec`
# can name any of them (with ``churn_options`` as the keyword arguments)
# and the engines stay agnostic of which process drives the events.

def _bernoulli_churn(
    rng: np.random.Generator,
    params,
    p_join: float | None = None,
    time_step: float = 1.0,
) -> Iterator[ChurnEvent]:
    if p_join is None:
        p_join = params.p_join
    return bernoulli_event_stream(rng, p_join=p_join, time_step=time_step)


def _poisson_churn(
    rng: np.random.Generator,
    params,
    rate: float = 2.0,
    join_rate: float | None = None,
    leave_rate: float | None = None,
) -> Iterator[ChurnEvent]:
    """Poisson superposition; by default the joint ``rate`` splits
    between joins and leaves according to ``params.p_join``."""
    if join_rate is None:
        join_rate = rate * params.p_join
    if leave_rate is None:
        leave_rate = rate * params.p_leave
    return poisson_event_stream(rng, join_rate, leave_rate)


def _exponential_session_churn(
    rng: np.random.Generator,
    params,
    arrival_rate: float = 1.0,
    mean_session: float = 10.0,
    horizon: float = 10_000.0,
) -> Iterator[ChurnEvent]:
    return session_event_stream(
        exponential_sessions(rng, arrival_rate, mean_session, horizon)
    )


def _pareto_session_churn(
    rng: np.random.Generator,
    params,
    arrival_rate: float = 1.0,
    shape: float = 1.5,
    scale: float = 1.0,
    horizon: float = 10_000.0,
) -> Iterator[ChurnEvent]:
    return session_event_stream(
        pareto_sessions(rng, arrival_rate, shape, scale, horizon)
    )


# -- event-indexed kind laws (batch-tier reduction) --------------------------
#
# The cluster chain is event-indexed: a churn process influences it only
# through the *kind sequence* (join or leave) of its events.  Each churn
# model therefore also registers its kind-law reduction, which is what
# the vectorized batch tier consumes:
#
# * :class:`IIDKinds` -- the process's kinds are i.i.d. (Bernoulli and
#   Poisson-superposition streams): the whole axis folds into a single
#   effective join probability mixed straight into the transition rows;
# * :class:`ScheduledKinds` -- the kinds are correlated (session-based
#   streams pair every join with a later leave): the sequence is
#   materialized once as a boolean schedule that lockstep trajectories
#   read from independent random offsets.
#
# Kind-law factories share the churn factories' signatures so one
# ``churn_options`` table drives both representations.

@dataclass(frozen=True)
class IIDKinds:
    """Event-indexed kind law of an i.i.d. churn process."""

    p_join: float

    def __post_init__(self) -> None:
        if not 0.0 < self.p_join < 1.0:
            raise ValueError(
                f"p_join must be in (0, 1), got {self.p_join}"
            )


@dataclass(frozen=True)
class ScheduledKinds:
    """Materialized kind sequence of a correlated churn process.

    ``schedule[k]`` is True when the stream's ``k``-th event is a join.
    Consumers read the (finite) schedule cyclically from per-trajectory
    offsets, which matches the per-trajectory law of a stationary
    stream segment.
    """

    schedule: np.ndarray

    def __post_init__(self) -> None:
        if self.schedule.size == 0:
            raise ValueError("kind schedule must be non-empty")


def _kinds_of(plans: list[SessionPlan]) -> np.ndarray:
    """Time-ordered join/leave flags of session plans (vectorized)."""
    arrivals = np.array([plan.arrival for plan in plans])
    departures = np.array([plan.departure for plan in plans])
    times = np.concatenate([arrivals, departures])
    # Joins sort before leaves on ties, matching session_event_stream.
    tiebreak = np.concatenate(
        [np.zeros(arrivals.size), np.ones(departures.size)]
    )
    order = np.lexsort((tiebreak, times))
    return order < arrivals.size


def _bernoulli_kinds(
    rng: np.random.Generator,
    params,
    p_join: float | None = None,
    time_step: float = 1.0,
) -> IIDKinds:
    return IIDKinds(params.p_join if p_join is None else p_join)


def _poisson_kinds(
    rng: np.random.Generator,
    params,
    rate: float = 2.0,
    join_rate: float | None = None,
    leave_rate: float | None = None,
) -> IIDKinds:
    if join_rate is None:
        join_rate = rate * params.p_join
    if leave_rate is None:
        leave_rate = rate * params.p_leave
    if join_rate <= 0 or leave_rate <= 0:
        raise ValueError(
            f"rates must be positive, got {join_rate}, {leave_rate}"
        )
    return IIDKinds(join_rate / (join_rate + leave_rate))


def _exponential_session_kinds(
    rng: np.random.Generator,
    params,
    arrival_rate: float = 1.0,
    mean_session: float = 10.0,
    horizon: float = 10_000.0,
) -> ScheduledKinds:
    return ScheduledKinds(
        _kinds_of(
            exponential_sessions(rng, arrival_rate, mean_session, horizon)
        )
    )


def _pareto_session_kinds(
    rng: np.random.Generator,
    params,
    arrival_rate: float = 1.0,
    shape: float = 1.5,
    scale: float = 1.0,
    horizon: float = 10_000.0,
) -> ScheduledKinds:
    return ScheduledKinds(
        _kinds_of(pareto_sessions(rng, arrival_rate, shape, scale, horizon))
    )


def _register_defaults() -> None:
    from repro.scenario.registry import CHURN_KIND_LAWS, CHURN_MODELS

    CHURN_MODELS.register("bernoulli", _bernoulli_churn)
    CHURN_MODELS.register("poisson", _poisson_churn)
    CHURN_MODELS.register(
        "exponential-sessions", _exponential_session_churn
    )
    CHURN_MODELS.register("pareto-sessions", _pareto_session_churn)
    CHURN_KIND_LAWS.register("bernoulli", _bernoulli_kinds)
    CHURN_KIND_LAWS.register("poisson", _poisson_kinds)
    CHURN_KIND_LAWS.register(
        "exponential-sessions", _exponential_session_kinds
    )
    CHURN_KIND_LAWS.register("pareto-sessions", _pareto_session_kinds)


_register_defaults()
