"""Benchmark: regenerate Figure 4 (absorption probabilities).

Paper bars: p(safe-merge), p(safe-split), p(polluted-merge) for k = 1
over the (mu, d) grid under both initial laws.  Shape asserted: the
mu = 0 random-walk anchors (0.57 / 0.43), normalization, the < 8 %
containment bound under delta, and split probability growing with d.
"""

from repro.analysis.figure4 import compute_figure4, render_figure4, shape_checks


def test_figure4(benchmark, report):
    cells = benchmark.pedantic(compute_figure4, rounds=1, iterations=1)
    checks = shape_checks(cells)
    assert all(checks.values()), checks
    report(
        "figure4",
        render_figure4(cells) + f"\n\nshape checks: {checks}",
    )
