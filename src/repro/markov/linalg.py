"""Linear-algebra helpers shared by the Markov-chain machinery.

All routines accept plain ``numpy.ndarray`` inputs.  Matrices handled by
the reproduction are small (a few hundred states), so dense solvers are
the default; the helpers still centralize tolerance handling and error
reporting so the higher-level code stays readable.
"""

from __future__ import annotations

import numpy as np

#: Default absolute tolerance used when checking stochasticity.
STOCHASTIC_ATOL = 1e-10


class MarkovNumericsError(ValueError):
    """Raised when a matrix fails a structural or numerical check."""


def as_square_array(matrix: np.ndarray, name: str = "matrix") -> np.ndarray:
    """Return ``matrix`` as a float ndarray, checking it is square.

    Parameters
    ----------
    matrix:
        Anything convertible to a 2-D ``numpy`` array.
    name:
        Name used in error messages.
    """
    arr = np.asarray(matrix, dtype=float)
    if arr.ndim != 2 or arr.shape[0] != arr.shape[1]:
        raise MarkovNumericsError(
            f"{name} must be square, got shape {arr.shape!r}"
        )
    return arr


def row_sums(matrix: np.ndarray) -> np.ndarray:
    """Row sums of ``matrix`` as a 1-D array."""
    return np.asarray(matrix, dtype=float).sum(axis=1)


def stochastic_check(matrix: np.ndarray, atol: float = STOCHASTIC_ATOL) -> None:
    """Validate that ``matrix`` is a right-stochastic matrix.

    Every entry must be in ``[0, 1]`` (within ``atol``) and every row must
    sum to one (within ``atol``).  Raises :class:`MarkovNumericsError`
    otherwise.
    """
    arr = as_square_array(matrix)
    if arr.shape[0] == 0:
        return  # vacuously stochastic
    if np.any(arr < -atol) or np.any(arr > 1.0 + atol):
        bad = np.argwhere((arr < -atol) | (arr > 1.0 + atol))[0]
        raise MarkovNumericsError(
            f"entry {tuple(bad)} = {arr[tuple(bad)]!r} outside [0, 1]"
        )
    sums = row_sums(arr)
    worst = int(np.argmax(np.abs(sums - 1.0)))
    if abs(sums[worst] - 1.0) > atol:
        raise MarkovNumericsError(
            f"row {worst} sums to {sums[worst]!r}, expected 1.0"
        )


def substochastic_check(
    matrix: np.ndarray, atol: float = STOCHASTIC_ATOL
) -> None:
    """Validate that ``matrix`` is sub-stochastic (row sums at most one).

    Sub-matrices of a stochastic matrix restricted to transient states are
    sub-stochastic; the fundamental-matrix machinery relies on this.
    """
    arr = as_square_array(matrix)
    if arr.shape[0] == 0:
        return  # vacuously sub-stochastic
    if np.any(arr < -atol):
        bad = np.argwhere(arr < -atol)[0]
        raise MarkovNumericsError(
            f"entry {tuple(bad)} = {arr[tuple(bad)]!r} is negative"
        )
    sums = row_sums(arr)
    worst = int(np.argmax(sums))
    if sums[worst] > 1.0 + atol:
        raise MarkovNumericsError(
            f"row {worst} sums to {sums[worst]!r}, expected <= 1.0"
        )


def solve_fundamental(
    transient: np.ndarray, rhs: np.ndarray | None = None
) -> np.ndarray:
    """Solve ``(I - T) Z = rhs`` for a sub-stochastic ``T``.

    When ``rhs`` is ``None`` the full fundamental matrix
    ``N = (I - T)^{-1}`` is returned.  A singular ``I - T`` means some
    transient subset cannot reach an absorbing state, which is reported
    as a modeling error rather than a bare ``LinAlgError``.
    """
    arr = as_square_array(transient, name="transient block")
    eye = np.eye(arr.shape[0])
    target = eye if rhs is None else np.asarray(rhs, dtype=float)
    if arr.shape[0] == 0:
        # Degenerate (fully restricted-away) block: nothing to solve.
        return target.copy()
    try:
        return np.linalg.solve(eye - arr, target)
    except np.linalg.LinAlgError as exc:
        raise MarkovNumericsError(
            "I - T is singular: the transient block has an invariant "
            "subset that never reaches absorption"
        ) from exc


def spectral_radius(matrix: np.ndarray) -> float:
    """Spectral radius (largest eigenvalue modulus) of ``matrix``."""
    arr = as_square_array(matrix)
    if arr.size == 0:
        return 0.0
    return float(np.max(np.abs(np.linalg.eigvals(arr))))


def stationary_distribution(
    matrix: np.ndarray, atol: float = STOCHASTIC_ATOL
) -> np.ndarray:
    """Stationary distribution of an irreducible stochastic ``matrix``.

    Solves ``pi P = pi`` with ``sum(pi) = 1`` via the standard replaced-
    equation linear system.  Used by tests and by the ergodic variants of
    the overlay model; the paper's chain itself is absorbing.
    """
    arr = as_square_array(matrix)
    stochastic_check(arr, atol=atol)
    n = arr.shape[0]
    system = (np.eye(n) - arr).T
    system[-1, :] = 1.0
    rhs = np.zeros(n)
    rhs[-1] = 1.0
    try:
        pi = np.linalg.solve(system, rhs)
    except np.linalg.LinAlgError as exc:
        raise MarkovNumericsError(
            "stationary distribution is not unique (chain reducible?)"
        ) from exc
    if np.any(pi < -1e-8):
        raise MarkovNumericsError(
            "stationary solve produced negative mass (chain reducible?)"
        )
    pi = np.clip(pi, 0.0, None)
    return pi / pi.sum()


def geometric_tail_bound(
    transient: np.ndarray, tol: float = 1e-12
) -> int:
    """Number of steps after which transient mass falls below ``tol``.

    Uses the spectral radius ``rho`` of the transient block: mass decays
    like ``rho**m``, so ``m >= log(tol) / log(rho)`` suffices.  Returns a
    small constant when the block is empty or nilpotent.
    """
    rho = spectral_radius(transient)
    if rho <= 0.0:
        return 1
    if rho >= 1.0:
        raise MarkovNumericsError(
            f"transient block has spectral radius {rho} >= 1"
        )
    return max(1, int(np.ceil(np.log(tol) / np.log(rho))))
