"""Benchmark: competing-clusters simulation vs Theorem 2.

Validates the overlay-level closed form (Figure 5's machinery) against
the empirical n-chain simulation, and times the simulation itself.
Runs on the default (vectorized batch) engine; the scalar-vs-batch
comparison lives in ``bench_batch_sim``.
"""

import numpy as np

from repro.analysis.tables import render_table
from repro.core.overlay_model import OverlayModel
from repro.core.parameters import ModelParameters
from repro.simulation.overlay_sim import CompetingClustersSimulation

PARAMS = ModelParameters(core_size=7, spare_max=7, k=1, mu=0.25, d=0.9)
N_CLUSTERS = 100
N_EVENTS = 5000
RECORD = 500


def run_simulation():
    rng = np.random.default_rng(99)
    simulation = CompetingClustersSimulation(PARAMS, N_CLUSTERS, rng)
    return simulation.run(N_EVENTS, record_every=RECORD)


def test_overlay_simulation_tracks_theorem2(benchmark, report):
    series = benchmark.pedantic(run_simulation, rounds=1, iterations=1)
    overlay = OverlayModel(PARAMS, N_CLUSTERS)
    analytic = overlay.proportion_series("delta", N_EVENTS, record_every=RECORD)
    gap = float(
        np.max(np.abs(series.safe_fraction - analytic.safe_fraction))
    )
    assert gap < 0.12, f"single-run deviation {gap:.3f} too large"
    rows = [
        [
            int(analytic.events[i]),
            analytic.safe_fraction[i],
            series.safe_fraction[i],
            analytic.polluted_fraction[i],
            series.polluted_fraction[i],
        ]
        for i in range(len(analytic.events))
    ]
    report(
        "overlay_sim",
        render_table(
            [
                "events",
                "safe (Thm 2)",
                "safe (sim)",
                "polluted (Thm 2)",
                "polluted (sim)",
            ],
            rows,
            title=(
                f"n={N_CLUSTERS} clusters, {PARAMS.describe()}, "
                "one simulated replication vs closed form"
            ),
        ),
    )
