"""Simulation-grade public-key scheme and certification authority.

The paper assumes X.509 certificates from trustworthy CAs, peer key
pairs and signed messages (Section III-C).  No cryptography library is
available offline, so this module implements a small, self-contained
textbook RSA (Miller-Rabin prime generation, e = 65537, SHA-256 message
digests) plus an X.509-like certificate record carrying the creation
date ``t0`` that Section III-D folds into identifier generation.

**This code is simulation-grade, not security-grade**: 512-bit moduli
and textbook (unpadded) RSA are trivially breakable in the real world.
The experiments only require (i) that certificates bind ``t0`` and a
public key unforgeably *within the simulation*, and (ii) that identifier
derivation is unpredictable -- both of which this scheme provides.  See
DESIGN.md, "Substitutions".
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

from repro.overlay.errors import CertificateError, SignatureError

#: Default RSA modulus size; small on purpose (simulation speed).
DEFAULT_KEY_BITS = 512

#: Standard RSA public exponent.
PUBLIC_EXPONENT = 65537

#: Deterministic Miller-Rabin witnesses, sufficient for n < 3.3 * 10^24.
_SMALL_WITNESSES = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37)

_SMALL_PRIMES = (
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61,
    67, 71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137,
    139, 149, 151, 157, 163, 167, 173, 179, 181, 191, 193, 197, 199,
)


def is_probable_prime(n: int, rng: np.random.Generator, rounds: int = 20) -> bool:
    """Miller-Rabin primality test with fixed plus random witnesses."""
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1

    def witnesses():
        yield from _SMALL_WITNESSES
        words_needed = (n.bit_length() // 30) + 1
        for _ in range(rounds):
            # Build an arbitrary-precision random witness from 30-bit
            # words (numpy generators cap at 64-bit draws).
            value = 0
            for _ in range(words_needed):
                value = (value << 30) | int(rng.integers(0, 1 << 30))
            yield 2 + value % (n - 3)

    for a in witnesses():
        a %= n
        if a in (0, 1, n - 1):
            continue
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = pow(x, 2, n)
            if x == n - 1:
                break
        else:
            return False
    return True


def generate_prime(bits: int, rng: np.random.Generator) -> int:
    """Random prime with exactly ``bits`` bits."""
    if bits < 8:
        raise CertificateError(f"prime size must be >= 8 bits, got {bits}")
    while True:
        words = [int(rng.integers(0, 1 << 30)) for _ in range((bits // 30) + 1)]
        candidate = 0
        for word in words:
            candidate = (candidate << 30) | word
        candidate &= (1 << bits) - 1
        candidate |= (1 << (bits - 1)) | 1  # exact size, odd
        if is_probable_prime(candidate, rng):
            return candidate


def _message_digest(message: bytes) -> int:
    return int.from_bytes(hashlib.sha256(message).digest(), "big")


@dataclass(frozen=True)
class PublicKey:
    """RSA public key ``(n, e)``."""

    modulus: int
    exponent: int = PUBLIC_EXPONENT

    def verify(self, message: bytes, signature: int) -> bool:
        """True when ``signature`` opens to the SHA-256 of ``message``."""
        if not 0 <= signature < self.modulus:
            return False
        expected = _message_digest(message) % self.modulus
        return pow(signature, self.exponent, self.modulus) == expected

    def fingerprint(self) -> bytes:
        """Stable byte encoding used inside certificates."""
        return f"rsa|{self.modulus:x}|{self.exponent:x}".encode()


@dataclass(frozen=True)
class KeyPair:
    """RSA key pair; the private exponent never leaves this object."""

    public: PublicKey
    _private_exponent: int

    @classmethod
    def generate(
        cls, rng: np.random.Generator, bits: int = DEFAULT_KEY_BITS
    ) -> "KeyPair":
        """Generate a fresh key pair using the supplied seeded RNG."""
        half = bits // 2
        while True:
            p = generate_prime(half, rng)
            q = generate_prime(bits - half, rng)
            if p == q:
                continue
            n = p * q
            phi = (p - 1) * (q - 1)
            if phi % PUBLIC_EXPONENT == 0:
                continue
            d = pow(PUBLIC_EXPONENT, -1, phi)
            return cls(PublicKey(n, PUBLIC_EXPONENT), d)

    def sign(self, message: bytes) -> int:
        """Textbook RSA signature over the SHA-256 digest."""
        digest = _message_digest(message) % self.public.modulus
        return pow(digest, self._private_exponent, self.public.modulus)


@dataclass(frozen=True)
class Certificate:
    """X.509-like record binding a subject to a key and a creation date.

    ``created_at`` is the paper's ``t0``: hashing it into the initial
    identifier forces every peer -- malicious included -- to obtain a
    fresh, unpredictable identifier per incarnation.
    """

    serial: int
    subject: str
    public_key: PublicKey
    created_at: float
    issuer: str
    signature: int

    def signed_fields(self) -> bytes:
        """Canonical byte encoding of the fields covered by the CA
        signature (and hashed into ``id0``)."""
        return b"|".join(
            (
                f"serial={self.serial}".encode(),
                f"subject={self.subject}".encode(),
                self.public_key.fingerprint(),
                f"t0={self.created_at!r}".encode(),
                f"issuer={self.issuer}".encode(),
            )
        )


class CertificateAuthority:
    """Trustworthy registration authority issuing peer certificates.

    A single CA suffices for the experiments; the class is cheap enough
    to instantiate several if a federation is ever needed.
    """

    def __init__(
        self,
        rng: np.random.Generator,
        name: str = "repro-ca",
        key_bits: int = DEFAULT_KEY_BITS,
    ) -> None:
        self._name = name
        self._keys = KeyPair.generate(rng, key_bits)
        self._serial = 0

    @property
    def name(self) -> str:
        """Issuer name embedded in certificates."""
        return self._name

    @property
    def public_key(self) -> PublicKey:
        """CA verification key, distributed out of band."""
        return self._keys.public

    def issue(
        self, subject: str, public_key: PublicKey, created_at: float
    ) -> Certificate:
        """Issue a certificate for ``subject`` created at time ``t0``."""
        if created_at < 0:
            raise CertificateError(
                f"creation time must be >= 0, got {created_at}"
            )
        self._serial += 1
        unsigned = Certificate(
            serial=self._serial,
            subject=subject,
            public_key=public_key,
            created_at=created_at,
            issuer=self._name,
            signature=0,
        )
        signature = self._keys.sign(unsigned.signed_fields())
        return Certificate(
            serial=unsigned.serial,
            subject=unsigned.subject,
            public_key=unsigned.public_key,
            created_at=unsigned.created_at,
            issuer=unsigned.issuer,
            signature=signature,
        )

    def verify(self, certificate: Certificate) -> None:
        """Raise :class:`CertificateError` unless the certificate is
        genuine and issued by this CA."""
        if certificate.issuer != self._name:
            raise CertificateError(
                f"certificate issued by {certificate.issuer!r}, "
                f"expected {self._name!r}"
            )
        if not self.public_key.verify(
            certificate.signed_fields(), certificate.signature
        ):
            raise CertificateError(
                f"bad CA signature on certificate #{certificate.serial}"
            )


@dataclass(frozen=True)
class SignedMessage:
    """A payload signed by a peer, carrying its certificate.

    Section III-C: recipients ignore any message that is not signed
    properly; messages contain the issuer certificate for validation.
    """

    payload: bytes
    certificate: Certificate
    signature: int

    def verify(self, ca: CertificateAuthority) -> None:
        """Validate both the certificate chain and the payload signature."""
        ca.verify(self.certificate)
        if not self.certificate.public_key.verify(self.payload, self.signature):
            raise SignatureError(
                f"bad signature on message from {self.certificate.subject!r}"
            )


def sign_message(
    payload: bytes, keys: KeyPair, certificate: Certificate
) -> SignedMessage:
    """Produce a :class:`SignedMessage` for ``payload``."""
    return SignedMessage(
        payload=payload,
        certificate=certificate,
        signature=keys.sign(payload),
    )
