"""Unit tests for ModelParameters validation and derived quantities."""

import pytest

from repro.core.parameters import PAPER_BASE, ModelParameters, ParameterError


class TestValidation:
    def test_defaults_are_paper_base(self):
        params = ModelParameters()
        assert params.core_size == 7
        assert params.spare_max == 7
        assert params.k == 1

    def test_k_bounds(self):
        ModelParameters(k=7)
        with pytest.raises(ParameterError, match="k must satisfy"):
            ModelParameters(k=8)
        with pytest.raises(ParameterError, match="k must satisfy"):
            ModelParameters(k=0)

    def test_mu_bounds(self):
        ModelParameters(mu=0.0)
        ModelParameters(mu=1.0)
        with pytest.raises(ParameterError, match="mu"):
            ModelParameters(mu=-0.1)
        with pytest.raises(ParameterError, match="mu"):
            ModelParameters(mu=1.1)

    def test_d_bounds(self):
        ModelParameters(d=0.999)
        with pytest.raises(ParameterError, match="d must"):
            ModelParameters(d=1.5)

    def test_nu_open_interval(self):
        with pytest.raises(ParameterError, match="nu"):
            ModelParameters(nu=0.0)
        with pytest.raises(ParameterError, match="nu"):
            ModelParameters(nu=1.0)

    def test_spare_max_minimum(self):
        with pytest.raises(ParameterError, match="spare_max"):
            ModelParameters(spare_max=1)

    def test_p_join_open_interval(self):
        with pytest.raises(ParameterError, match="p_join"):
            ModelParameters(p_join=0.0)
        with pytest.raises(ParameterError, match="p_join"):
            ModelParameters(p_join=1.0)

    def test_core_size_minimum(self):
        with pytest.raises(ParameterError, match="core_size"):
            ModelParameters(core_size=0, k=1)


class TestDerived:
    def test_pollution_quorum_matches_bft_bound(self):
        # c = floor((C-1)/3): the Lamport-Shostak-Pease threshold.
        assert ModelParameters(core_size=7).pollution_quorum == 2
        assert ModelParameters(core_size=4).pollution_quorum == 1
        assert ModelParameters(core_size=10).pollution_quorum == 3
        assert ModelParameters(core_size=13).pollution_quorum == 4

    def test_max_cluster_size(self):
        assert ModelParameters(core_size=7, spare_max=7).max_cluster_size == 14

    def test_p_leave_complements_p_join(self):
        params = ModelParameters(p_join=0.3)
        assert params.p_leave == pytest.approx(0.7)

    def test_p_core(self):
        params = ModelParameters(core_size=7)
        assert params.p_core(0) == pytest.approx(1.0)
        assert params.p_core(7) == pytest.approx(0.5)

    def test_p_core_rejects_negative_spare(self):
        with pytest.raises(ParameterError):
            ModelParameters().p_core(-1)

    def test_is_polluted_threshold(self):
        params = ModelParameters(core_size=7)
        assert not params.is_polluted(2)
        assert params.is_polluted(3)

    def test_with_overrides_revalidates(self):
        params = ModelParameters(mu=0.1)
        updated = params.with_overrides(mu=0.2)
        assert updated.mu == 0.2
        assert params.mu == 0.1  # frozen original untouched
        with pytest.raises(ParameterError):
            params.with_overrides(mu=2.0)

    def test_describe_mentions_key_fields(self):
        text = ModelParameters(mu=0.25, d=0.9).describe()
        assert "mu=0.250" in text
        assert "d=0.9000" in text

    def test_paper_base_constant(self):
        assert PAPER_BASE.core_size == 7
        assert PAPER_BASE.spare_max == 7

    def test_hashable_for_caching(self):
        cache = {ModelParameters(mu=0.1): "a"}
        assert cache[ModelParameters(mu=0.1)] == "a"
