"""The coordinator: durable job queue + TCP assignment of sweep points.

One :class:`SweepCoordinator` owns a sweep: it expands the grid,
records every point into the JSONL job ledger, serves CLAIM requests
from any number of ``repro worker`` processes (local or remote) over
the length-prefixed JSON protocol, and folds each RESULT back into the
shared content-addressed store -- atomically, then ledgered as done --
until every point is terminal.

Failure semantics (the contract the tests pin down):

* **worker killed mid-point** -- its TCP connection drops; every point
  assigned on that connection and not yet resulted is requeued
  immediately.  No lease clock is needed for crash recovery because
  the claim dies with the connection.
* **coordinator killed mid-sweep** -- restart it with the same ledger
  and cache: ledger replay marks the finished points ``done`` (their
  results are in the store -- ``done`` is only ever appended *after*
  the atomic store publish), and only unfinished points are handed out
  again.  A torn final ledger line is skipped by replay.
* **point raises** -- the worker reports FAILED; the failure is
  terminal (deterministic errors must not ping-pong between workers)
  and surfaces in the summary and the ledger.
* **duplicate results** -- two workers racing on a requeued point both
  store byte-identical content-addressed files; the second RESULT is
  acked as a no-op.

Results are validated before being trusted: the coordinator recomputes
nothing, but it requires the returned key to match the assignment's
spec address (the wire round trip of
:meth:`~repro.scenario.spec.ScenarioSpec.to_json` preserves content
addresses, so a mismatch means a corrupt or confused worker).
"""

from __future__ import annotations

import asyncio
import collections
import pathlib
import threading
import time
from typing import Any, Iterable

from repro.distributed.ledger import SweepLedger
from repro.distributed.protocol import (
    ProtocolError,
    read_frame,
    write_frame,
)
from repro.scenario.spec import ScenarioSpec, SweepSpec
from repro.scenario.store import result_path, store_result

__all__ = ["SweepCoordinator"]

#: Seconds a worker is told to sleep when every point is in flight.
WAIT_DELAY = 0.2

#: Publish attempts per point before a store failure becomes terminal.
#: Covers a transient hiccup (flaky NFS, momentary disk pressure)
#: without letting a deterministic one (unwritable cache dir, a
#: version-skewed worker whose payload shape cannot rebuild) requeue
#: and recompute the same point forever.
PUBLISH_RETRY_LIMIT = 3


class SweepCoordinator:
    """Coordinates one sweep across any number of connected workers.

    ``points`` is a :class:`~repro.scenario.spec.SweepSpec` or an
    iterable of expanded specs; ``cache_dir`` is the shared
    content-addressed store every result lands in; ``ledger_path``
    (optional but recommended) makes the queue durable and the sweep
    crash-resumable.  ``host``/``port`` bind the TCP endpoint
    (``port=0`` picks a free port, published as :attr:`port` once
    :attr:`ready` is set -- a ``threading.Event``, so a driver thread
    can wait for the bind without touching the event loop).

    Run with ``await serve()`` inside an event loop or the blocking
    :meth:`run`; :meth:`request_stop` (thread-safe) ends the serve loop
    early, leaving pending points for a resumed coordinator.
    """

    def __init__(
        self,
        points: SweepSpec | Iterable[ScenarioSpec],
        *,
        cache_dir: str | pathlib.Path,
        ledger_path: str | pathlib.Path | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        await_workers: int = 0,
    ) -> None:
        self._specs = (
            points.expand() if isinstance(points, SweepSpec) else list(points)
        )
        self._by_key: dict[str, ScenarioSpec] = {
            spec.key(): spec for spec in self._specs
        }
        self._cache_dir = pathlib.Path(cache_dir)
        self._ledger_path = (
            pathlib.Path(ledger_path) if ledger_path is not None else None
        )
        self._host = host
        self._requested_port = port
        self.port: int | None = None
        self.ready = threading.Event()
        self._pending: collections.deque[str] = collections.deque()
        self._done: set[str] = set()
        self._failed: dict[str, str] = {}
        self._in_flight: dict[str, str] = {}
        self._resumed = 0
        self._from_cache = 0
        self._computed_by: collections.Counter[str] = collections.Counter()
        self._publish_retries: collections.Counter[str] = (
            collections.Counter()
        )
        self._ledger: SweepLedger | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._complete: asyncio.Event | None = None
        self._stopped = False
        self._connections: set[asyncio.StreamWriter] = set()
        self._handlers: set[asyncio.Task] = set()
        # Gang start: hold assignments until this many distinct workers
        # have connected (0 = assign immediately).  Benchmarks use it so
        # the measured window is pure N-worker compute, not process boot.
        self._await_workers = int(await_workers)
        self._helloed: set[str] = set()
        self._first_assign_time: float | None = None
        self._complete_time: float | None = None

    # -- lifecycle ----------------------------------------------------------

    def run(self) -> dict[str, Any]:
        """Blocking entry point: ``asyncio.run(self.serve())``."""
        return asyncio.run(self.serve())

    def request_stop(self) -> None:
        """Thread-safe early stop (pending points stay in the ledger)."""
        self._stopped = True
        if self._loop is not None and self._complete is not None:
            self._loop.call_soon_threadsafe(self._complete.set)

    async def serve(self) -> dict[str, Any]:
        """Serve workers until every point is terminal; return a summary."""
        started = time.perf_counter()
        self._loop = asyncio.get_running_loop()
        self._complete = asyncio.Event()
        if self._ledger_path is not None:
            self._ledger = SweepLedger(self._ledger_path)
        try:
            self._build_queue()
            if self._outstanding() == 0:
                self._complete.set()
            server = await asyncio.start_server(
                self._handle_worker, self._host, self._requested_port
            )
            self.port = server.sockets[0].getsockname()[1]
            self.ready.set()
            try:
                await self._complete.wait()
            finally:
                server.close()
                await server.wait_closed()
                # Drain handlers gracefully: closing each connection
                # lands its reader on EOF, so no task dies mid-frame.
                for writer in list(self._connections):
                    writer.close()
                if self._handlers:
                    await asyncio.gather(
                        *self._handlers, return_exceptions=True
                    )
        finally:
            if self._ledger is not None:
                self._ledger.close()
        return self._summary(time.perf_counter() - started)

    # -- queue construction -------------------------------------------------

    def _build_queue(self) -> None:
        """Fold the ledger and the store into the initial queue.

        Order of trust: a ledgered ``done`` is authoritative (the store
        publish precedes it); a cache file for a never-ledgered point
        (e.g. from an earlier serial run) is equally final -- the
        content address *is* the result identity.  Everything else is
        pending, ledger claims included (stale by construction).
        """
        previously_done: set[str] = set()
        if self._ledger is not None:
            state = self._ledger.replay()
            previously_done = state.done
            # Ledgered failures are terminal across restarts too: a
            # resumed coordinator must not re-queue a deterministic
            # failure (or hang waiting on it when no workers attach).
            self._failed.update(
                {
                    key: error
                    for key, error in state.failed.items()
                    if key in self._by_key
                }
            )
            self._ledger.record_scheduled(
                self._specs, already_scheduled=set(state.scheduled)
            )
        queued: set[str] = set()
        for spec in self._specs:
            key = spec.key()
            if key in self._done or key in queued:
                continue  # duplicate grid point
            # Existence is completion: the store only ever publishes
            # whole files (atomic os.replace), so no payload parsing is
            # needed to build the queue -- and a readable result always
            # outranks a ledgered failure (the content address *is* the
            # result identity, however it got computed).  The check
            # also guards the one crash window the ledger cannot see:
            # a power loss after the fsynced "done" line but before the
            # renamed store file's directory entry reached disk.
            have_result = result_path(self._cache_dir, spec).exists()
            if key in previously_done and have_result:
                self._done.add(key)
                self._resumed += 1
            elif have_result:
                self._failed.pop(key, None)
                self._done.add(key)
                self._from_cache += 1
                if self._ledger is not None:
                    self._ledger.record_done(key, worker="cache")
            elif key in self._failed:
                continue  # terminal failure with no result to trust
            else:
                queued.add(key)
                self._pending.append(key)

    def _outstanding(self) -> int:
        return len(self._by_key) - len(self._done) - len(self._failed)

    # -- per-connection protocol loop ---------------------------------------

    async def _handle_worker(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        worker = "<anonymous>"
        assigned: set[str] = set()
        task = asyncio.current_task()
        if task is not None:
            self._handlers.add(task)
        self._connections.add(writer)
        try:
            while True:
                try:
                    message = await read_frame(reader)
                except ProtocolError:
                    break  # torn connection: requeue via finally
                if message is None:
                    break
                kind = message.get("type")
                try:
                    if kind == "hello":
                        worker = str(message.get("worker", worker))
                        self._helloed.add(worker)
                    elif kind == "claim":
                        await self._assign(writer, worker, assigned)
                    elif kind == "result":
                        await self._accept_result(
                            writer, worker, assigned, message
                        )
                    elif kind == "failed":
                        self._accept_failure(worker, assigned, message)
                    elif kind == "heartbeat":
                        # Keeps the TCP connection observably alive
                        # through NATs/idle timeouts during a long
                        # point; lease bookkeeping is future work.
                        pass
                    else:
                        await write_frame(
                            writer,
                            {
                                "type": "error",
                                "error": f"unknown type {kind!r}",
                            },
                        )
                except (ConnectionError, OSError):
                    raise
                except Exception as error:  # noqa: BLE001 -- hostile input
                    # A malformed message must not take the handler (and
                    # with it this worker's claims) down silently.
                    await write_frame(
                        writer,
                        {
                            "type": "error",
                            "error": f"{type(error).__name__}: {error}",
                        },
                    )
        except (ConnectionError, OSError):
            pass  # torn transport: identical to EOF, claims requeue below
        finally:
            self._connections.discard(writer)
            if task is not None:
                self._handlers.discard(task)
            # A dropped connection releases its claims instantly.
            for key in assigned:
                self._in_flight.pop(key, None)
                if key not in self._done and key not in self._failed:
                    self._pending.append(key)
            if self._complete is not None and self._outstanding() == 0:
                self._complete.set()
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    async def _assign(
        self,
        writer: asyncio.StreamWriter,
        worker: str,
        assigned: set[str],
    ) -> None:
        if len(self._helloed) < self._await_workers:
            await write_frame(writer, {"type": "wait", "delay": WAIT_DELAY})
            return
        while self._pending:
            key = self._pending.popleft()
            if key in self._done or key in self._failed:
                continue  # satisfied while queued (duplicate result)
            if self._first_assign_time is None:
                self._first_assign_time = time.perf_counter()
            self._in_flight[key] = worker
            assigned.add(key)
            if self._ledger is not None:
                self._ledger.record_claimed(key, worker)
            await write_frame(
                writer,
                {
                    "type": "assign",
                    "key": key,
                    "spec": self._by_key[key].to_dict(),
                },
            )
            return
        if self._outstanding() > 0 and not self._stopped:
            await write_frame(writer, {"type": "wait", "delay": WAIT_DELAY})
        else:
            await write_frame(writer, {"type": "shutdown"})

    async def _accept_result(
        self,
        writer: asyncio.StreamWriter,
        worker: str,
        assigned: set[str],
        message: dict[str, Any],
    ) -> None:
        from repro.scenario.backends import ScenarioResult

        key = message.get("key")
        spec = self._by_key.get(key)
        payload = message.get("result")
        if spec is None or not isinstance(payload, dict):
            await write_frame(
                writer,
                {"type": "error", "error": f"result for unknown key {key!r}"},
            )
            return
        if payload.get("key") != key:
            await write_frame(
                writer,
                {
                    "type": "error",
                    "error": (
                        f"result key {payload.get('key')!r} does not match "
                        f"assignment {key!r}"
                    ),
                },
            )
            return
        if key not in self._done:
            elapsed = message.get("elapsed")

            def publish() -> None:
                # Publish first, ledger second: "done" implies readable.
                store_result(
                    self._cache_dir, spec, ScenarioResult.from_dict(payload)
                )
                if self._ledger is not None:
                    self._ledger.record_done(key, worker, elapsed=elapsed)

            try:
                # Off the event loop: the store publish and the ledger
                # append both fsync, and other workers' claims must not
                # queue behind disk flushes.
                await asyncio.get_running_loop().run_in_executor(
                    None, publish
                )
            except Exception as error:  # noqa: BLE001 -- bad payload/disk
                # The point must stay claimable -- dropping it from
                # every queue here would hang the sweep forever.  Only
                # the assignee's claim is released: a non-assignee's
                # broken payload must not requeue (and double-run) a
                # point that its real owner is still computing.
                if key in assigned:
                    assigned.discard(key)
                    self._in_flight.pop(key, None)
                    self._publish_retries[key] += 1
                    if self._publish_retries[key] >= PUBLISH_RETRY_LIMIT:
                        # Persistent: recompute/republish cycles would
                        # livelock the fleet.  Terminal failure.
                        detail = (
                            f"result not storable after "
                            f"{PUBLISH_RETRY_LIMIT} attempts "
                            f"({type(error).__name__}: {error})"
                        )
                        self._failed[key] = detail
                        if self._ledger is not None:
                            self._ledger.record_failed(key, worker, detail)
                        if self._outstanding() == 0:
                            self._complete_time = time.perf_counter()
                            self._complete.set()
                        await write_frame(
                            writer,
                            {"type": "ack", "key": key, "stored": False},
                        )
                        return
                    self._pending.append(key)
                await write_frame(
                    writer,
                    {
                        "type": "error",
                        # Retryable: the worker did nothing wrong (e.g.
                        # transient disk pressure) and must keep
                        # claiming rather than die -- the point is back
                        # in the queue precisely so someone retries it.
                        "retryable": True,
                        "error": (
                            f"result for {key[:12]} not stored "
                            f"({type(error).__name__}: {error}); requeued"
                        ),
                    },
                )
                return
            # A real result supersedes a racing worker's failure report
            # (and keeps done/failed disjoint, the _outstanding
            # invariant).
            self._failed.pop(key, None)
            self._done.add(key)
            self._computed_by[worker] += 1
        if key in assigned:
            assigned.discard(key)
            self._in_flight.pop(key, None)
        if self._outstanding() == 0:
            self._complete_time = time.perf_counter()
            self._complete.set()
        await write_frame(writer, {"type": "ack", "key": key})

    def _accept_failure(
        self, worker: str, assigned: set[str], message: dict[str, Any]
    ) -> None:
        key = message.get("key")
        if (
            not isinstance(key, str)
            or key not in assigned  # only the assignee may fail a point
            or key in self._done
            or key in self._failed
        ):
            return
        assigned.discard(key)
        self._in_flight.pop(key, None)
        error = str(message.get("error", "unknown error"))
        self._failed[key] = error
        if self._ledger is not None:
            self._ledger.record_failed(key, worker, error)
        if self._outstanding() == 0:
            # The compute window closes on the last *terminal* event,
            # successful or not.
            self._complete_time = time.perf_counter()
            self._complete.set()

    # -- reporting ----------------------------------------------------------

    def _summary(self, elapsed: float) -> dict[str, Any]:
        compute_elapsed = None
        if (
            self._first_assign_time is not None
            and self._complete_time is not None
        ):
            compute_elapsed = self._complete_time - self._first_assign_time
        return {
            # Wall time from the first assignment to the last result:
            # the pure N-worker compute window (None if nothing ran).
            "compute_elapsed_seconds": compute_elapsed,
            "total": len(self._by_key),
            "done": len(self._done),
            "failed": dict(self._failed),
            "pending": self._outstanding(),
            "computed": sum(self._computed_by.values()),
            "resumed_from_ledger": self._resumed,
            "from_cache": self._from_cache,
            "workers": dict(self._computed_by),
            "elapsed_seconds": elapsed,
            "cache_dir": str(self._cache_dir),
            "ledger": (
                str(self._ledger_path)
                if self._ledger_path is not None
                else None
            ),
        }
